"""Operand routing on the time-extended CGRA.

Routing finds, for a DFG edge whose producer and consumer are already
placed, a chain of *routing PEs* (§II) that carries the value one mesh hop
per cycle from the producer's output to some PE adjacent to the consumer at
the cycle before the consumer fires.  A PE may also route to itself, which
models holding the value in place for a cycle.

The search runs on the time-extended graph: states are ``(PE, time)``, a
transition advances time by one cycle and moves to a 1-hop-reachable PE
whose modulo slot is free in the reservation table.  An optional
``hop_allowed`` predicate restricts transitions — the paged compiler uses it
to enforce the §VI-B ring-topology constraint (values may only stay within
a page or cross to the ring-successor page).

When a route is longer than the II, a PE could collide with the route's own
earlier steps modulo II; the search then switches from layered BFS to a
depth-first search that tracks the slots used along the partial path.

The searches run entirely on integer PE ids from the fabric's
:class:`~repro.arch.interconnect.GridIndex`: a :class:`RoutingContext`
pins one (fabric, hop filter) pair and memoizes the per-PE allowed-move
lists, the per-(PE, destination-hint) greedy move orderings, and the
per-destination goal tables (goal PEs sorted by PE id, a membership mask,
the min-Manhattan-to-goal pruning bound, and the greedy destination
*hint*).  Route choice is a pure function of these explicit tables — the
search itself never consults set iteration order.  ``Coord`` objects only
appear at the public API boundary.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.capability import OpClass
from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.mapping import RouteStep
from repro.compiler.mrt import ReservationTable
from repro.compiler.stats import counters

__all__ = [
    "RoutingContext",
    "find_route",
    "find_route_shared",
    "commit_route",
    "release_route",
]

HopFilter = Callable[[Coord, Coord], bool]

#: Pruning distance for states when the goal set is empty (no PE can ever
#: satisfy ``dist > remaining`` being False): larger than any grid distance.
_UNREACHABLE = 1 << 30


class RoutingContext:
    """Memoized integer-domain routing tables for one (fabric, hop filter).

    Built once per mapper (or per standalone :func:`find_route` call) and
    consulted millions of times: every table is an indexed load, computed
    lazily on first use and reused for the rest of the mapping run.
    """

    __slots__ = (
        "gi",
        "hop_allowed",
        "allowed_moves",
        "_route_mask",
        "_moves_toward",
        "_moves_tables",
        "_goals",
    )

    def __init__(self, cgra: CGRA, hop_allowed: HopFilter | None = None) -> None:
        gi = cgra.grid_index
        self.gi = gi
        self.hop_allowed = hop_allowed
        # A transition *into* q parks a route step on q, so q must be
        # ROUTE-capable; homogeneous fabrics have no mask and keep the
        # original (byte-identical) tables.
        route_mask = cgra.class_mask(OpClass.ROUTE)
        self._route_mask = route_mask
        if hop_allowed is None and route_mask is None:
            # identical order to Interconnect.reachable_in_one: self first
            self.allowed_moves: tuple[tuple[int, ...], ...] = gi.reach1_ids
        else:
            coords = gi.coords
            self.allowed_moves = tuple(
                tuple(
                    q
                    for q in gi.reach1_ids[p]
                    if (route_mask is None or route_mask[q])
                    and (
                        hop_allowed is None
                        or hop_allowed(coords[p], coords[q])
                    )
                )
                for p in range(gi.num_pes)
            )
        # (pe, hint) -> allowed moves stably sorted by Manhattan-to-hint
        self._moves_toward: list[dict[int, tuple[int, ...]]] = [
            {} for _ in range(gi.num_pes)
        ]
        # hint -> full per-PE move table (one indexed load per expansion in
        # the route searches instead of a method call + dict probe)
        self._moves_tables: dict[int, tuple[tuple[int, ...], ...]] = {}
        # dst -> (goal ids sorted, membership mask, min-dist-to-goal, hint)
        self._goals: dict[
            int,
            tuple[tuple[int, ...], tuple[bool, ...], tuple[int, ...], int | None],
        ] = {}

    def moves(self, pe_id: int, hint_id: int | None) -> tuple[int, ...]:
        """Legal one-cycle moves from *pe_id*, greedily ordered toward the
        destination hint (stable sort, so base adjacency order breaks
        ties exactly as the Coord-domain router did)."""
        if hint_id is None:
            return self.allowed_moves[pe_id]
        memo = self._moves_toward[pe_id]
        out = memo.get(hint_id)
        if out is None:
            row = self.gi.manhattan[hint_id]
            out = tuple(sorted(self.allowed_moves[pe_id], key=row.__getitem__))
            memo[hint_id] = out
        else:
            counters().move_cache_hits += 1
        return out

    def moves_table(self, hint_id: int | None) -> tuple[tuple[int, ...], ...]:
        """The full per-PE :meth:`moves` table for one destination hint.

        The route searches index this tuple directly in their inner loops;
        each entry is exactly ``moves(p, hint_id)``, so move ordering (and
        therefore every tie-break the searches make) is unchanged."""
        if hint_id is None:
            return self.allowed_moves
        tbl = self._moves_tables.get(hint_id)
        if tbl is None:
            tbl = tuple(
                self.moves(p, hint_id) for p in range(self.gi.num_pes)
            )
            self._moves_tables[hint_id] = tbl
        else:
            counters().move_cache_hits += 1
        return tbl

    def goal_table(
        self, dst_id: int
    ) -> tuple[tuple[int, ...], tuple[bool, ...], tuple[int, ...], int | None]:
        """Goal PEs from which the consumer at *dst_id* can read the value,
        sorted by PE id, plus a membership mask, the per-PE minimum
        Manhattan distance to any goal (the search's pruning bound), and
        the greedy destination hint the move ordering anchors on.

        The hint is pinned to the anchor the v1 Coord-domain router used
        (the first element of its goal *set*): route tie-breaks are part of
        the mapper's observable behaviour, and the committed artifact store
        is content-addressed over it — changing the hint rule would change
        routes and invalidate every stored artifact.  It is computed once
        here and memoized, so the search itself only ever reads this
        explicit table.
        """
        entry = self._goals.get(dst_id)
        if entry is None:
            gi = self.gi
            coords = gi.coords
            dst = coords[dst_id]
            if self.hop_allowed is None:
                unsorted_goal = list(gi.reach1_ids[dst_id])
            else:
                unsorted_goal = [
                    p
                    for p in gi.reach1_ids[dst_id]
                    if self.hop_allowed(coords[p], dst)
                ]
            goal = sorted(unsorted_goal)
            mask = [False] * gi.num_pes
            for g in goal:
                mask[g] = True
            # A multi-hop route can only *end* on a ROUTE-capable goal (the
            # last holder is a route step); pre-filtering tightens the
            # pruning bound.  The full mask stays as-is: a direct 1-cycle
            # producer->consumer read needs no route capability at all.
            if self._route_mask is None:
                search_goal = goal
            else:
                rm = self._route_mask
                search_goal = [g for g in goal if rm[g]]
            if search_goal:
                man = gi.manhattan
                min_dist = tuple(
                    min(man[q][g] for g in search_goal)
                    for q in range(gi.num_pes)
                )
                # legacy v1 anchor: first member of the goal built as a set
                # of Coords in reachable_in_one insertion order
                hint = gi.id_of[next(iter({coords[p] for p in unsorted_goal}))]
            else:
                min_dist = (_UNREACHABLE,) * gi.num_pes
                hint = None
            entry = (tuple(goal), tuple(mask), min_dist, hint)
            self._goals[dst_id] = entry
        else:
            counters().target_cache_hits += 1
        return entry


def find_route_shared(
    cgra: CGRA,
    mrt: ReservationTable,
    sources: list[tuple[Coord, int, "RouteStep | None"]],
    dst_pe: Coord,
    t_dst: int,
    *,
    hop_allowed: HopFilter | None = None,
    max_expansions: int = 20000,
    ctx: RoutingContext | None = None,
) -> tuple[tuple[RouteStep, ...], "RouteStep | None"] | None:
    """Route from the *best* of several value holders to the consumer.

    ``sources`` are ``(pe, time, tap)`` triples: the producer itself
    (``tap=None``) and any sibling route steps already re-emitting the same
    value (fanout sharing — see :class:`~repro.compiler.mapping.Route`).
    Holders closest in time to the consumer are tried first, so shared
    chains are extended instead of duplicated.  Returns ``(steps, tap)``.
    """
    if ctx is None:
        ctx = RoutingContext(cgra, hop_allowed)
    id_of = ctx.gi.id_of
    ids = [(id_of[s[0]], s[1], s[2]) for s in sources]
    return find_route_shared_ids(
        ctx, mrt, ids, id_of[dst_pe], t_dst, max_expansions=max_expansions
    )


def find_route_shared_ids(
    ctx: RoutingContext,
    mrt: ReservationTable,
    sources: list[tuple[int, int, "RouteStep | None"]],
    dst_id: int,
    t_dst: int,
    *,
    max_expansions: int = 20000,
) -> tuple[tuple[RouteStep, ...], "RouteStep | None"] | None:
    """Integer-domain :func:`find_route_shared` (hot-path entry point)."""
    ordered = [s for s in sources if t_dst - s[1] >= 1]
    if len(ordered) > 1:
        # nearest holder (latest re-emission) first; stable, so sibling
        # steps keep their discovery order within a gap class
        ordered.sort(key=lambda s: t_dst - s[1])
    for pe_id, time, tap in ordered:
        steps = find_route_ids(
            ctx, mrt, pe_id, time, dst_id, t_dst, max_expansions=max_expansions
        )
        if steps is not None:
            return steps, tap
    return None


def find_route(
    cgra: CGRA,
    mrt: ReservationTable,
    src_pe: Coord,
    t_src_eff: int,
    dst_pe: Coord,
    t_dst: int,
    *,
    hop_allowed: HopFilter | None = None,
    max_expansions: int = 20000,
    ctx: RoutingContext | None = None,
) -> tuple[RouteStep, ...] | None:
    """Find route steps carrying a value from *src_pe* (produced at
    consumer-frame time *t_src_eff*) to the consumer at (*dst_pe*, *t_dst*).

    Returns the tuple of steps (empty for a direct 1-cycle link), or None
    when no route exists under the current reservations.  Steps at negative
    times are legal during search bookkeeping only in the consumer frame;
    modulo arithmetic maps them onto the repeating schedule.
    """
    if ctx is None:
        ctx = RoutingContext(cgra, hop_allowed)
    id_of = ctx.gi.id_of
    return find_route_ids(
        ctx,
        mrt,
        id_of[src_pe],
        t_src_eff,
        id_of[dst_pe],
        t_dst,
        max_expansions=max_expansions,
    )


def find_route_ids(
    ctx: RoutingContext,
    mrt: ReservationTable,
    src_id: int,
    t_src_eff: int,
    dst_id: int,
    t_dst: int,
    *,
    max_expansions: int = 20000,
) -> tuple[RouteStep, ...] | None:
    """Integer-domain :func:`find_route` (hot-path entry point)."""
    counters().route_calls += 1
    gap = t_dst - t_src_eff
    if gap < 1:
        return None
    goal, goal_mask, min_dist, hint = ctx.goal_table(dst_id)
    if gap == 1:
        return () if goal_mask[src_id] else None
    hops = gap - 1  # number of route steps, at times t_src_eff+1 .. t_dst-1
    if hops < mrt.ii:
        return _bfs_route(ctx, mrt, src_id, t_src_eff, goal_mask, min_dist, hint, hops)
    return _dfs_route(
        ctx,
        mrt,
        src_id,
        t_src_eff,
        goal_mask,
        min_dist,
        hint,
        hops,
        max_expansions,
    )


def _steps_of(ctx: RoutingContext, path: list[int], t_src_eff: int):
    coords = ctx.gi.coords
    return tuple(
        [RouteStep(coords[p], t_src_eff + j + 1) for j, p in enumerate(path)]
    )


def _bfs_route(
    ctx: RoutingContext,
    mrt: ReservationTable,
    src_id: int,
    t_src_eff: int,
    goal_mask: tuple[bool, ...],
    min_dist: tuple[int, ...],
    hint: int | None,
    hops: int,
) -> tuple[RouteStep, ...] | None:
    """Layered BFS: all step times are distinct modulo II (hops < II), so a
    path can never collide with itself and per-layer reachability suffices."""
    counters().bfs_calls += 1
    ii = mrt.ii
    num_pes = mrt.num_pes
    occ = mrt._occ_mask
    mt = ctx.moves_table(hint)
    expansions = 0
    layer: dict[int, int | None] = {src_id: None}
    parents: list[dict[int, int]] = []
    for j in range(1, hops + 1):
        base = ((t_src_eff + j) % ii) * num_pes
        remaining = hops - j
        nxt: dict[int, int] = {}
        for p in layer:
            expansions += 1
            for q in mt[p]:
                if q in nxt:
                    continue
                if occ[base + q]:
                    continue
                # prune states that cannot reach any goal in remaining hops
                if min_dist[q] > remaining:
                    continue
                nxt[q] = p
        if not nxt:
            counters().expansions += expansions
            return None
        parents.append(nxt)
        layer = nxt
    counters().expansions += expansions
    final = next((p for p in layer if goal_mask[p]), None)
    if final is None:
        return None
    path = [final]
    p = final
    for j in range(hops - 1, 0, -1):
        p = parents[j][p]
        path.append(p)
    path.reverse()
    return _steps_of(ctx, path, t_src_eff)


def _dfs_route(
    ctx: RoutingContext,
    mrt: ReservationTable,
    src_id: int,
    t_src_eff: int,
    goal_mask: tuple[bool, ...],
    min_dist: tuple[int, ...],
    hint: int | None,
    hops: int,
    max_expansions: int,
) -> tuple[RouteStep, ...] | None:
    """Depth-first exact-length search tracking the modulo slots the partial
    path itself occupies (needed when the route is longer than the II).

    Children are probed in :meth:`RoutingContext.moves_table` order (one
    indexed load per expansion instead of a method call + dict probe) and
    leaf goal tests are inlined into the parent's loop; visit order,
    budget accounting and therefore search results are bit-for-bit
    unchanged from the original formulation."""
    counters().dfs_calls += 1
    ii = mrt.ii
    num_pes = mrt.num_pes
    mt = ctx.moves_table(hint)
    # visited-set seeded with the MRT occupancy bitmap (one C-speed copy),
    # so the inner loop tests a single byte per candidate slot
    used = bytearray(mrt._occ_mask)
    # path[d]: the step-d PE of the current partial path; positions are
    # overwritten on backtrack, and only read out along a successful chain
    path: list[int] = [0] * hops
    budget = max_expansions
    # bases[d]: flat MRT base for steps placed by the node at depth d
    bases = [((t_src_eff + d + 1) % ii) * num_pes for d in range(hops)]
    last = hops - 1  # depth whose children are the final (goal) steps
    lastm1 = hops - 2

    def rec(p: int, j: int) -> bool:
        nonlocal budget
        base = bases[j]
        if j == last:
            # final step: children are leaves, test the goal inline (one
            # budget unit per leaf visit, exactly like the recursive form)
            for q in mt[p]:
                idx = base + q
                if used[idx]:
                    continue
                if min_dist[q] > 0:
                    continue
                if budget <= 0:
                    return False
                budget -= 1
                if goal_mask[q]:
                    path[last] = q
                    return True
            return False
        if j == lastm1:
            # penultimate step: expand the final level inline too — the
            # two deepest levels carry most of the visit volume, and this
            # spares a Python call per penultimate-node visit.  Checks,
            # budget accounting and child order are bit-for-bit the
            # recursive form's.
            base2 = bases[last]
            for q in mt[p]:
                idx = base + q
                if used[idx]:
                    continue
                if min_dist[q] > 1:
                    continue
                if budget <= 0:
                    return False
                budget -= 1
                used[idx] = 1
                for r in mt[q]:
                    idx2 = base2 + r
                    if used[idx2]:
                        continue
                    if min_dist[r] > 0:
                        continue
                    if budget <= 0:
                        used[idx] = 0
                        return False
                    budget -= 1
                    if goal_mask[r]:
                        path[lastm1] = q
                        path[last] = r
                        return True
                used[idx] = 0
            return False
        remaining = hops - j - 1
        for q in mt[p]:
            idx = base + q
            if used[idx]:
                continue
            if min_dist[q] > remaining:
                continue
            if budget <= 0:
                return False
            budget -= 1
            used[idx] = 1
            path[j] = q
            if rec(q, j + 1):
                return True
            used[idx] = 0
        return False

    found = False
    if budget > 0:
        budget -= 1  # visit the source node
        found = rec(src_id, 0)
    counters().expansions += max_expansions - budget
    if not found:
        return None
    return _steps_of(ctx, path, t_src_eff)


def commit_route(
    mrt: ReservationTable, edge_id: int, steps: tuple[RouteStep, ...]
) -> None:
    """Claim every step's modulo slot in the reservation table."""
    id_of = mrt.cgra.grid_index.id_of
    claim = mrt.claim_id
    for s in steps:
        claim(id_of[s.pe], s.time, f"route{edge_id}@{s.time}")


def release_route(
    mrt: ReservationTable, steps: tuple[RouteStep, ...]
) -> None:
    id_of = mrt.cgra.grid_index.id_of
    release = mrt.release_id
    for s in steps:
        release(id_of[s.pe], s.time)
