"""Operand routing on the time-extended CGRA.

Routing finds, for a DFG edge whose producer and consumer are already
placed, a chain of *routing PEs* (§II) that carries the value one mesh hop
per cycle from the producer's output to some PE adjacent to the consumer at
the cycle before the consumer fires.  A PE may also route to itself, which
models holding the value in place for a cycle.

The search runs on the time-extended graph: states are ``(PE, time)``, a
transition advances time by one cycle and moves to a 1-hop-reachable PE
whose modulo slot is free in the reservation table.  An optional
``hop_allowed`` predicate restricts transitions — the paged compiler uses it
to enforce the §VI-B ring-topology constraint (values may only stay within
a page or cross to the ring-successor page).

When a route is longer than the II, a PE could collide with the route's own
earlier steps modulo II; the search then switches from layered BFS to a
depth-first search that tracks the slots used along the partial path.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.mapping import RouteStep
from repro.compiler.mrt import ReservationTable

__all__ = ["find_route", "find_route_shared", "commit_route", "release_route"]

HopFilter = Callable[[Coord, Coord], bool]


def find_route_shared(
    cgra: CGRA,
    mrt: ReservationTable,
    sources: list[tuple[Coord, int, "RouteStep | None"]],
    dst_pe: Coord,
    t_dst: int,
    *,
    hop_allowed: HopFilter | None = None,
    max_expansions: int = 20000,
) -> tuple[tuple[RouteStep, ...], "RouteStep | None"] | None:
    """Route from the *best* of several value holders to the consumer.

    ``sources`` are ``(pe, time, tap)`` triples: the producer itself
    (``tap=None``) and any sibling route steps already re-emitting the same
    value (fanout sharing — see :class:`~repro.compiler.mapping.Route`).
    Holders closest in time to the consumer are tried first, so shared
    chains are extended instead of duplicated.  Returns ``(steps, tap)``.
    """
    ordered = sorted(
        (s for s in sources if t_dst - s[1] >= 1), key=lambda s: t_dst - s[1]
    )
    for pe, time, tap in ordered:
        steps = find_route(
            cgra,
            mrt,
            pe,
            time,
            dst_pe,
            t_dst,
            hop_allowed=hop_allowed,
            max_expansions=max_expansions,
        )
        if steps is not None:
            return steps, tap
    return None


def _targets(cgra: CGRA, dst_pe: Coord, hop_allowed: HopFilter | None) -> set[Coord]:
    """PEs from which the consumer at *dst_pe* can read the value."""
    out = set()
    for pe in cgra.interconnect.reachable_in_one(dst_pe):
        if hop_allowed is None or hop_allowed(pe, dst_pe):
            out.add(pe)
    return out


def find_route(
    cgra: CGRA,
    mrt: ReservationTable,
    src_pe: Coord,
    t_src_eff: int,
    dst_pe: Coord,
    t_dst: int,
    *,
    hop_allowed: HopFilter | None = None,
    max_expansions: int = 20000,
) -> tuple[RouteStep, ...] | None:
    """Find route steps carrying a value from *src_pe* (produced at
    consumer-frame time *t_src_eff*) to the consumer at (*dst_pe*, *t_dst*).

    Returns the tuple of steps (empty for a direct 1-cycle link), or None
    when no route exists under the current reservations.  Steps at negative
    times are legal during search bookkeeping only in the consumer frame;
    modulo arithmetic maps them onto the repeating schedule.
    """
    gap = t_dst - t_src_eff
    if gap < 1:
        return None
    goal = _targets(cgra, dst_pe, hop_allowed)
    if gap == 1:
        return () if src_pe in goal else None
    hops = gap - 1  # number of route steps, at times t_src_eff+1 .. t_dst-1
    if hops < mrt.ii:
        return _bfs_route(cgra, mrt, src_pe, t_src_eff, goal, hops, hop_allowed)
    return _dfs_route(
        cgra, mrt, src_pe, t_src_eff, goal, hops, hop_allowed, max_expansions
    )


def _moves(
    cgra: CGRA, pe: Coord, dst_hint: Coord | None, hop_allowed: HopFilter | None
) -> list[Coord]:
    opts = list(cgra.interconnect.reachable_in_one(pe))
    if hop_allowed is not None:
        opts = [q for q in opts if hop_allowed(pe, q)]
    if dst_hint is not None:
        opts.sort(key=lambda q: q.manhattan(dst_hint))
    return opts


def _bfs_route(
    cgra: CGRA,
    mrt: ReservationTable,
    src_pe: Coord,
    t_src_eff: int,
    goal: set[Coord],
    hops: int,
    hop_allowed: HopFilter | None,
) -> tuple[RouteStep, ...] | None:
    """Layered BFS: all step times are distinct modulo II (hops < II), so a
    path can never collide with itself and per-layer reachability suffices."""
    dst_hint = next(iter(goal)) if goal else None
    layer: dict[Coord, Coord | None] = {src_pe: None}
    parents: list[dict[Coord, Coord]] = []
    for j in range(1, hops + 1):
        t = t_src_eff + j
        nxt: dict[Coord, Coord] = {}
        for pe in layer:
            for q in _moves(cgra, pe, dst_hint, hop_allowed):
                if q in nxt:
                    continue
                if not mrt.slot_free(q, t):
                    continue
                # prune states that cannot reach any goal in remaining hops
                remaining = hops - j
                if all(q.manhattan(g) > remaining for g in goal):
                    continue
                nxt[q] = pe
        if not nxt:
            return None
        parents.append(nxt)
        layer = nxt
    finals = [pe for pe in layer if pe in goal]
    if not finals:
        return None
    pe = finals[0]
    path = [pe]
    for j in range(hops - 1, 0, -1):
        pe = parents[j][pe]
        path.append(pe)
    path.reverse()
    return tuple(
        RouteStep(p, t_src_eff + j + 1) for j, p in enumerate(path)
    )


def _dfs_route(
    cgra: CGRA,
    mrt: ReservationTable,
    src_pe: Coord,
    t_src_eff: int,
    goal: set[Coord],
    hops: int,
    hop_allowed: HopFilter | None,
    max_expansions: int,
) -> tuple[RouteStep, ...] | None:
    """Depth-first exact-length search tracking the modulo slots the partial
    path itself occupies (needed when the route is longer than the II)."""
    ii = mrt.ii
    dst_hint = next(iter(goal)) if goal else None
    used: set[tuple[Coord, int]] = set()
    path: list[Coord] = []
    budget = [max_expansions]

    def rec(pe: Coord, j: int) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if j == hops:
            return pe in goal
        t = t_src_eff + j + 1
        for q in _moves(cgra, pe, dst_hint, hop_allowed):
            key = (q, t % ii)
            if key in used or not mrt.slot_free(q, t):
                continue
            remaining = hops - j - 1
            if all(q.manhattan(g) > remaining for g in goal):
                continue
            used.add(key)
            path.append(q)
            if rec(q, j + 1):
                return True
            path.pop()
            used.discard(key)
        return False

    if not rec(src_pe, 0):
        return None
    return tuple(RouteStep(p, t_src_eff + j + 1) for j, p in enumerate(path))


def commit_route(
    mrt: ReservationTable, edge_id: int, steps: tuple[RouteStep, ...]
) -> None:
    """Claim every step's modulo slot in the reservation table."""
    for s in steps:
        mrt.claim(s.pe, s.time, f"route{edge_id}@{s.time}")


def release_route(
    mrt: ReservationTable, steps: tuple[RouteStep, ...]
) -> None:
    for s in steps:
        mrt.release(s.pe, s.time)
