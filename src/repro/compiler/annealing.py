"""DRESC-style simulated-annealing mapper (second baseline).

The DRESC compiler [9] maps loops onto ADRES-class CGRAs by simulated
annealing over placements, with routability folded into the cost function.
This module reproduces that approach at small scale, as the paper's related
work uses it: a slow-but-thorough baseline to contrast with the fast
EMS-style greedy mapper, and an ablation point for compile-time cost
(bench ``ALG1``/mapper-comparison).

The anneal optimises op placement under a cost with three terms: causality
violations (an edge scheduled backwards in time), stretch violations (an
edge whose Manhattan distance exceeds its timing gap, i.e. unroutable even
on an empty fabric), and modulo-slot/bus conflicts.  A zero-cost placement
is then routed in detail with the shared router; congestion failures are
penalised and the anneal resumes.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.compiler.mapping import (
    Mapping,
    Placement,
    Route,
    materialized_edges,
    materialized_ops,
)
from repro.compiler.mrt import ReservationTable
from repro.compiler.routing import commit_route, find_route
from repro.dfg.analysis import asap_times, rec_mii
from repro.dfg.graph import DFG
from repro.util.errors import MappingError
from repro.util.rng import make_rng

__all__ = ["anneal_map", "anneal_map_paged"]

_W_CAUSAL = 100.0
_W_STRETCH = 10.0
_W_CONFLICT = 25.0


def _energy(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    pos: dict[int, tuple[Coord, int]],
    page_of=None,
    ring_succ=None,
) -> float:
    e = 0.0
    slots: dict[tuple[Coord, int], int] = {}
    bus: dict[tuple[int, int], int] = {}
    for op_id, (pe, t) in pos.items():
        key = (pe, t % ii)
        slots[key] = slots.get(key, 0) + 1
        if dfg.ops[op_id].is_memory:
            bkey = (pe.row, t % ii)
            bus[bkey] = bus.get(bkey, 0) + 1
    e += _W_CONFLICT * sum(c - 1 for c in slots.values() if c > 1)
    e += _W_CONFLICT * sum(
        c - cgra.mem_ports_per_row
        for c in bus.values()
        if c > cgra.mem_ports_per_row
    )
    for edge in materialized_edges(dfg):
        pe_u, t_u = pos[edge.src]
        pe_v, t_v = pos[edge.dst]
        gap = t_v - (t_u - edge.distance * ii)
        if gap < 1:
            e += _W_CAUSAL * (1 - gap)
            continue
        dist = pe_u.manhattan(pe_v)
        if dist > gap:
            e += _W_STRETCH * (dist - gap)
        if page_of is not None:
            # ring feasibility proxy: the consumer's page must be reachable
            # by moving forward 0..gap ring hops from the producer's page
            p_u, p_v = page_of[pe_u], page_of[pe_v]
            steps = 0
            page = p_u
            while page != p_v and steps <= gap:
                page = ring_succ(page)
                steps += 1
            if page != p_v or steps > gap:
                e += _W_STRETCH * 2
    return e


def _detailed_route(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    pos: dict[int, tuple[Coord, int]],
    hop_allowed=None,
    bus_key=None,
) -> Mapping | None:
    """Try to realise a zero-cost placement with concrete routes."""
    mrt = ReservationTable(cgra, ii, bus_key)
    placements: dict[int, Placement] = {}
    try:
        for op_id, (pe, t) in pos.items():
            mrt.claim(pe, t, f"op{op_id}", memory=dfg.ops[op_id].is_memory)
            placements[op_id] = Placement(op_id, pe, t)
    except MappingError:
        return None
    routes: dict[int, Route] = {}
    # route tight edges first: they have the least slack for detours
    edges = sorted(
        materialized_edges(dfg),
        key=lambda e: (pos[e.dst][1] - (pos[e.src][1] - e.distance * ii)),
    )
    for e in edges:
        pe_u, t_u = pos[e.src]
        pe_v, t_v = pos[e.dst]
        steps = find_route(
            cgra, mrt, pe_u, t_u - e.distance * ii, pe_v, t_v,
            hop_allowed=hop_allowed,
        )
        if steps is None:
            return None
        commit_route(mrt, e.id, steps)
        routes[e.id] = Route(e.id, steps)
    return Mapping(cgra, dfg, ii, placements, routes)


def anneal_map(
    dfg: DFG,
    cgra: CGRA,
    *,
    seed: int = 0,
    max_ii: int = 64,
    iterations: int = 4000,
    restarts: int = 3,
    allowed_pes: Sequence[Coord] | None = None,
    hop_allowed=None,
    page_of=None,
    ring_succ=None,
    bus_key=None,
) -> Mapping:
    """Map *dfg* onto *cgra* by simulated annealing over placements.

    Deterministic for a given seed.  Raises :class:`MappingError` if no
    mapping is found up to ``max_ii``.  ``hop_allowed`` restricts routing
    hops, which is how the paging constraints plug in — the paper's §IX
    notes the transformation framework "is independent of the underlying
    mapping algorithm", and :func:`anneal_map_paged` demonstrates exactly
    that with this second mapper.
    """
    mat = materialized_ops(dfg)
    if not mat:
        raise MappingError("cannot map a DFG with no materialized ops")
    pes = list(allowed_pes) if allowed_pes is not None else list(cgra.coords())
    rng = make_rng(seed)
    start_ii = max(
        math.ceil(len(mat) / len(pes)),
        math.ceil(dfg.num_memory_ops / (cgra.rows * cgra.mem_ports_per_row)),
        rec_mii(dfg),
    )
    asap = asap_times(dfg)
    depth = max(asap.values(), default=0)

    for ii in range(start_ii, max_ii + 1):
        horizon = depth + 3 * ii + 1
        for _ in range(restarts):
            pos = {
                v: (pes[int(rng.integers(len(pes)))], int(rng.integers(horizon)))
                for v in mat
            }
            energy = _energy(dfg, cgra, ii, pos, page_of, ring_succ)
            temp = 10.0 + energy / 4.0
            for it in range(iterations):
                # repro: allow[DET-FLOAT-EQ] energies are sums of integer penalty weights, exact by construction
                if energy == 0.0 and it % 50 == 0:
                    mapping = _detailed_route(
                        dfg, cgra, ii, pos, hop_allowed, bus_key
                    )
                    if mapping is not None:
                        return mapping
                    energy += _W_CONFLICT  # congestion: keep searching
                op = mat[int(rng.integers(len(mat)))]
                old = pos[op]
                pos[op] = (
                    pes[int(rng.integers(len(pes)))],
                    int(rng.integers(horizon)),
                )
                new_energy = _energy(dfg, cgra, ii, pos, page_of, ring_succ)
                delta = new_energy - energy
                if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-9)):
                    energy = new_energy
                else:
                    pos[op] = old
                temp *= 0.999
            # repro: allow[DET-FLOAT-EQ] energies are sums of integer penalty weights, exact by construction
            if energy == 0.0:
                mapping = _detailed_route(
                    dfg, cgra, ii, pos, hop_allowed, bus_key
                )
                if mapping is not None:
                    return mapping
    raise MappingError(
        f"annealing failed to map {dfg.name!r} within II <= {max_ii}"
    )


def anneal_map_paged(
    dfg: DFG,
    cgra: CGRA,
    layout,
    *,
    seed: int = 0,
    max_ii: int = 64,
    iterations: int = 4000,
    restarts: int = 3,
) -> Mapping:
    """Annealing mapper under the paper's §VI-B paging constraints.

    Demonstrates the §IX claim that the multithreading framework is
    mapper-agnostic: the same ring-topology hop filter that constrains the
    EMS-style mapper constrains DRESC-style annealing, and the resulting
    mappings feed the identical PageMaster transformation.  (Use
    :func:`repro.compiler.paged.map_dfg_paged` for production compilation;
    this variant exists for the mapper-independence ablation.)
    """
    from repro.compiler.check import validate_mapping
    from repro.compiler.constraints import paged_bus_key, ring_hop_filter

    hop = ring_hop_filter(layout)
    allowed = [pe for pe in cgra.coords() if pe in layout.page_of]
    mapping = anneal_map(
        dfg,
        cgra,
        seed=seed,
        max_ii=max_ii,
        iterations=iterations,
        restarts=restarts,
        allowed_pes=allowed,
        hop_allowed=hop,
        page_of=layout.page_of,
        ring_succ=layout.ring_succ,
        bus_key=paged_bus_key(layout),
    )
    validate_mapping(
        mapping,
        allowed_pes=allowed,
        hop_allowed=hop,
        bus_key=paged_bus_key(layout),
    )
    return mapping
