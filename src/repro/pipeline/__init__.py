"""Unified compilation pipeline: fingerprints -> artifacts -> cache -> fan-out.

The paper's §III premise is that CGRA mapping is too expensive to redo at
runtime; it is also too expensive to redo at *bench* time.  This package is
the single front door through which the rest of the codebase obtains
compiled kernels:

* **Fingerprints** — :meth:`repro.dfg.graph.DFG.fingerprint`,
  :meth:`repro.arch.cgra.CGRA.fingerprint` and
  :meth:`repro.compiler.ems.MapperConfig.fingerprint` are canonical
  structural hashes; together they content-address a compilation.
* **Artifacts** — :class:`CompiledKernel` carries the paged mapping, page
  need, baseline/paged IIs and the steady-state II table, with versioned
  canonical JSON serialization.
* **Store** — :class:`ArtifactStore` persists artifacts content-addressed
  by ``(dfg_fp, arch_fp, mapper_fp)`` with atomic writes, logged (never
  swallowed) corruption handling, and hit/miss/compile-time counters.
* **Fan-out** — :func:`compile_many` compiles cache misses in parallel
  over a process pool, byte-identical to the serial path.

Typical use::

    from repro.pipeline import ArtifactStore, build_profiles

    store = ArtifactStore()                      # .repro_artifacts/
    profiles = build_profiles(4, 4, store=store, workers=4)
"""

from repro.pipeline.artifact import ARTIFACT_VERSION, ArtifactKey, CompiledKernel
from repro.pipeline.compile import (
    CompileFailure,
    CompileJob,
    build_profiles,
    compile_job,
    compile_kernel,
    compile_many,
    compile_many_outcomes,
    job_key,
    make_layout,
)
from repro.pipeline.store import STORE_DIRNAME, ArtifactStore

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactKey",
    "CompiledKernel",
    "ArtifactStore",
    "STORE_DIRNAME",
    "CompileFailure",
    "CompileJob",
    "job_key",
    "compile_job",
    "compile_kernel",
    "compile_many",
    "compile_many_outcomes",
    "build_profiles",
    "make_layout",
]
