"""The compilation artifact: everything a compiled kernel ever needs again.

A :class:`CompiledKernel` is the unit the :class:`~repro.pipeline.store.
ArtifactStore` persists and the rest of the codebase consumes.  It carries
the paged mapping itself (placements and routes), the page need, both IIs,
and the precomputed steady-state II table of the PageMaster-shrunk
schedule — so neither the benches nor the system simulator ever re-invoke
the mapper (or re-derive PageMaster placements) for a kernel that was
compiled before.

Artifacts are plain data with a versioned, canonical JSON encoding:
``to_json()`` of equal artifacts is byte-identical (sorted keys, fixed
separators), which is what lets the parallel fan-out of
:func:`repro.pipeline.compile.compile_many` be checked against the serial
path exactly.  The page-level schedule is not stored redundantly; it is
reconstructed deterministically from the mapping by :meth:`materialize`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction

from repro.util.errors import ArtifactError
from repro.util.fingerprint import canonical_json

__all__ = ["ARTIFACT_VERSION", "ArtifactKey", "CompiledKernel"]

#: Bump when the artifact schema or the meaning of a field changes; stores
#: treat artifacts of any other version as cache misses.
ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class ArtifactKey:
    """Content address of one compilation: what was compiled (``dfg_fp``),
    for which fabric (``arch_fp``), with which mapper tuning
    (``mapper_fp``)."""

    dfg_fp: str
    arch_fp: str
    mapper_fp: str

    @property
    def digest(self) -> str:
        """Filesystem-safe combined digest used as the store filename."""
        blob = f"{self.dfg_fp}/{self.arch_fp}/{self.mapper_fp}".encode("ascii")
        return hashlib.sha256(blob).hexdigest()

    def __str__(self) -> str:
        return f"{self.dfg_fp}/{self.arch_fp}/{self.mapper_fp}"


@dataclass(frozen=True)
class CompiledKernel:
    """One kernel compiled for one (CGRA, page layout, mapper config).

    ``placements`` holds ``(op_id, row, col, time)`` per DFG op;
    ``routes`` holds ``(edge_id, steps, tap)`` with each step/tap a
    ``(row, col, time)`` triple; ``steady_ii`` holds ``(m, numerator,
    denominator)`` of the exact steady-state II for every shrink target
    ``m <= pages_used``.  ``unmappable`` artifacts record that the paged
    compiler could not honour the constraints (the paper likewise omits
    such configurations); they keep the baseline II and nothing else.

    ``capability`` is the fabric's heterogeneous PE capability map in the
    canonical :attr:`~repro.arch.capability.CapabilityMap.classes` encoding
    (None for homogeneous fabrics).  It is emitted in the JSON only when
    set, so artifacts of homogeneous fabrics — including every artifact
    minted before the capability model existed — keep their exact bytes.
    """

    kernel: str
    rows: int
    cols: int
    rf_depth: int
    mem_ports_per_row: int
    page_shape: tuple[int, int]
    layout_wrap: bool  # mapping's layout used the ring-wrap link topology
    seed: int
    dfg_fp: str
    arch_fp: str
    mapper_fp: str
    ii_base: int
    unmappable: bool = False
    ii_paged: int = 0
    pages_used: int = 0
    wrap_used: bool = False
    placements: tuple[tuple[int, int, int, int], ...] = ()
    routes: tuple[
        tuple[
            int,
            tuple[tuple[int, int, int], ...],
            tuple[int, int, int] | None,
        ],
        ...,
    ] = ()
    steady_ii: tuple[tuple[int, int, int], ...] = ()
    capability: tuple[tuple[str, tuple[int, ...]], ...] | None = None

    # -- identity -------------------------------------------------------------------

    @property
    def key(self) -> ArtifactKey:
        return ArtifactKey(self.dfg_fp, self.arch_fp, self.mapper_fp)

    # -- serialization --------------------------------------------------------------

    def to_json_dict(self) -> dict:
        payload = {
            "version": ARTIFACT_VERSION,
            "kernel": self.kernel,
            "rows": self.rows,
            "cols": self.cols,
            "rf_depth": self.rf_depth,
            "mem_ports_per_row": self.mem_ports_per_row,
            "page_shape": list(self.page_shape),
            "layout_wrap": self.layout_wrap,
            "seed": self.seed,
            "dfg_fp": self.dfg_fp,
            "arch_fp": self.arch_fp,
            "mapper_fp": self.mapper_fp,
            "ii_base": self.ii_base,
            "unmappable": self.unmappable,
            "ii_paged": self.ii_paged,
            "pages_used": self.pages_used,
            "wrap_used": self.wrap_used,
            "placements": [list(p) for p in self.placements],
            "routes": [
                [e, [list(s) for s in steps], list(tap) if tap is not None else None]
                for (e, steps, tap) in self.routes
            ],
            "steady_ii": [list(s) for s in self.steady_ii],
        }
        if self.capability is not None:
            payload["capability"] = [
                [cls_, list(ids)] for (cls_, ids) in self.capability
            ]
        return payload

    def to_json(self) -> str:
        """Canonical encoding: equal artifacts serialize byte-identically."""
        return canonical_json(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, raw: dict) -> "CompiledKernel":
        if not isinstance(raw, dict):
            raise ArtifactError(f"artifact payload is {type(raw).__name__}, not an object")
        version = raw.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"artifact schema version {version!r} != {ARTIFACT_VERSION}"
            )
        try:
            return cls(
                kernel=raw["kernel"],
                rows=raw["rows"],
                cols=raw["cols"],
                rf_depth=raw["rf_depth"],
                mem_ports_per_row=raw["mem_ports_per_row"],
                page_shape=tuple(raw["page_shape"]),
                layout_wrap=raw["layout_wrap"],
                seed=raw["seed"],
                dfg_fp=raw["dfg_fp"],
                arch_fp=raw["arch_fp"],
                mapper_fp=raw["mapper_fp"],
                ii_base=raw["ii_base"],
                unmappable=raw["unmappable"],
                ii_paged=raw["ii_paged"],
                pages_used=raw["pages_used"],
                wrap_used=raw["wrap_used"],
                placements=tuple(tuple(p) for p in raw["placements"]),
                routes=tuple(
                    (
                        e,
                        tuple(tuple(s) for s in steps),
                        tuple(tap) if tap is not None else None,
                    )
                    for (e, steps, tap) in raw["routes"]
                ),
                steady_ii=tuple(tuple(s) for s in raw["steady_ii"]),
                capability=tuple(
                    (cls_, tuple(ids)) for (cls_, ids) in raw["capability"]
                )
                if raw.get("capability") is not None
                else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from exc

    # -- consumption ----------------------------------------------------------------

    def steady_table(self) -> dict[int, Fraction]:
        """The PageMaster steady-state II per shrink target, exact."""
        return {m: Fraction(num, den) for (m, num, den) in self.steady_ii}

    def profile(self):
        """The :class:`~repro.sim.system.KernelProfile` the system model
        consumes (None for unmappable configurations)."""
        from repro.sim.system import KernelProfile

        if self.unmappable:
            return None
        return KernelProfile(
            self.kernel,
            self.ii_base,
            self.ii_paged,
            self.pages_used,
            self.wrap_used,
            steady_ii=self.steady_table(),
        )

    def materialize(self, dfg):
        """Rebuild the full :class:`~repro.compiler.paged.PagedMapping` —
        mapping, layout, and page-level schedule — from the artifact.

        *dfg* must be the graph this artifact was compiled from (checked
        against ``dfg_fp``); the page schedule is re-extracted
        deterministically rather than stored twice.
        """
        from repro.arch.cgra import CGRA
        from repro.arch.interconnect import Coord
        from repro.compiler.mapping import Mapping, Placement, Route, RouteStep
        from repro.compiler.paged import PagedMapping
        from repro.core.page_schedule import extract_page_schedule
        from repro.core.paging import PageLayout

        if self.unmappable:
            raise ArtifactError(
                f"artifact for {self.kernel!r} is unmappable; nothing to materialize"
            )
        if dfg.fingerprint() != self.dfg_fp:
            raise ArtifactError(
                f"DFG fingerprint {dfg.fingerprint()} does not match the "
                f"artifact's {self.dfg_fp}"
            )
        from repro.arch.capability import CapabilityMap

        cgra = CGRA(
            self.rows,
            self.cols,
            rf_depth=self.rf_depth,
            mem_ports_per_row=self.mem_ports_per_row,
            capability=CapabilityMap(self.rows, self.cols, self.capability)
            if self.capability is not None
            else None,
        )
        full = PageLayout(cgra, self.page_shape)
        layout = PageLayout(cgra, self.page_shape, allow_wrap=self.layout_wrap)
        if self.pages_used < layout.num_pages:
            layout = layout.subchain(self.pages_used)
        placements = {
            op_id: Placement(op_id, Coord(r, c), t)
            for (op_id, r, c, t) in self.placements
        }
        routes = {
            e: Route(
                e,
                tuple(RouteStep(Coord(r, c), t) for (r, c, t) in steps),
                RouteStep(Coord(tap[0], tap[1]), tap[2]) if tap is not None else None,
            )
            for (e, steps, tap) in self.routes
        }
        mapping = Mapping(cgra, dfg, self.ii_paged, placements, routes)
        schedule = extract_page_schedule(mapping, layout)
        return PagedMapping(mapping, layout, schedule, full)

    def summary(self) -> str:
        if self.unmappable:
            return (
                f"{self.kernel} on {self.rows}x{self.cols} "
                f"(pages {self.page_shape[0]}x{self.page_shape[1]}): unmappable"
            )
        return (
            f"{self.kernel} on {self.rows}x{self.cols} "
            f"(pages {self.page_shape[0]}x{self.page_shape[1]}): "
            f"II {self.ii_base}->{self.ii_paged}, need {self.pages_used} "
            f"page(s){', wrap' if self.wrap_used else ''}"
        )
