"""The compilation front door: jobs in, artifacts out, cache in between.

Everything in the repository that needs a compiled kernel — the figure
benches, the system simulator, the examples, the guided demo — goes through
:func:`compile_kernel` / :func:`compile_many`.  A job names *what* to
compile (kernel, grid size, page size/shape preference, seed); the pipeline
fingerprints the job's DFG, architecture and mapper configuration, consults
the :class:`~repro.pipeline.store.ArtifactStore`, and only invokes the
mapper on a genuine miss.

``compile_many`` with ``workers > 1`` runs the misses through the
speculative (II, attempt) portfolio engine (:mod:`repro.compiler.search`):
one shared ``ProcessPoolExecutor`` of probe workers serves every miss, and
a shared :class:`~repro.compiler.search.WorkerBudget` keeps kernel-level
and attempt-level parallelism from oversubscribing it — each miss holds at
least one probe slot (misses fan out across jobs first), and idle slots
drain into speculative probes of the stragglers.  The whole construction is
deterministic: the engine reduces probe results in canonical (II, attempt)
order, so the artifacts are byte-identical to the serial path for a fixed
seed, regardless of worker count.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.arch.cgra import CGRA
from repro.compiler.ems import MapperConfig, map_dfg
from repro.compiler.paged import map_dfg_paged
from repro.compiler.stats import job_counters
from repro.core.pagemaster import steady_state_ii
from repro.core.paging import PageLayout, choose_page_shape
from repro.kernels import get_kernel, kernel_names
from repro.pipeline.artifact import ArtifactKey, CompiledKernel
from repro.pipeline.store import ArtifactStore
from repro.util.errors import MappingError
from repro.util.fingerprint import canonical_fingerprint

__all__ = [
    "CompileJob",
    "CompileStats",
    "CompileFailure",
    "MAX_COORDINATION_THREADS",
    "job_key",
    "compile_job",
    "compile_job_stats",
    "compile_kernel",
    "compile_many",
    "compile_many_outcomes",
    "build_profiles",
    "make_layout",
]

#: Upper bound on ``compile_many``'s per-miss coordination threads.  The
#: threads only block on probe futures (the shared WorkerBudget bounds
#: actual parallelism), but an unbounded one-thread-per-miss spawn still
#: explodes on a large multi-tenant batch; misses beyond the cap queue on
#: the same bounded executor, in input order, with byte-identical results.
MAX_COORDINATION_THREADS = 32


def make_layout(cgra: CGRA, page_size: int, prefer: str = "square") -> PageLayout:
    """Standard page layout for the experiments: the most square tile of
    *page_size* PEs that fits (Fig. 4 uses 2x2 for size 4)."""
    return PageLayout(cgra, choose_page_shape(page_size, cgra.rows, cgra.cols, prefer))


@dataclass(frozen=True)
class CompileJob:
    """One unit of compilation work: a suite kernel on one configuration.

    ``mapper`` overrides the mapper tuning; by default the experiments'
    standard configuration (seeded, 4 attempts per II) is derived from
    ``seed``.  Jobs are hashable (dedup) and picklable (process fan-out).

    ``arch`` selects a named fabric preset (:func:`repro.arch.presets.
    preset` — e.g. ``"8x8-memcols"`` for the memory-capable-columns
    heterogeneous fabric); by default the job builds the homogeneous
    ``size`` x ``size`` grid, which is fingerprint-identical to the
    ``"{size}x{size}"`` preset.  ``backend`` picks the paged mapping
    strategy (``"flat"``, ``"hier"`` or ``"exact"``) when ``mapper`` is
    not given.
    """

    kernel: str
    size: int
    page_size: int
    prefer: str = "square"
    seed: int = 0
    mapper: MapperConfig | None = None
    arch: str | None = None
    backend: str = "flat"

    @property
    def mapper_config(self) -> MapperConfig:
        return self.mapper or MapperConfig(
            seed=self.seed, attempts_per_ii=4, backend=self.backend
        )

    def build_cgra(self) -> CGRA:
        if self.arch is not None:
            from repro.arch.presets import preset

            cgra = preset(self.arch)
            if (cgra.rows, cgra.cols) != (self.size, self.size):
                raise MappingError(
                    f"preset {self.arch!r} is {cgra.rows}x{cgra.cols}, "
                    f"but the job says size={self.size}"
                )
            return cgra
        from repro.arch.presets import experiment_cgra

        return experiment_cgra(self.size)


@dataclass(frozen=True)
class CompileStats:
    """Wall-clock and search-effort profile of one uncached compilation.

    ``counters`` is the increment of the process-wide
    :data:`repro.compiler.stats.COUNTERS` over this compile: route-search
    expansions, BFS/DFS invocations, placement probes, and memo-table hits
    (probe workers report their deltas back, so speculative search effort
    is included).  ``base_map_seconds``/``paged_map_seconds`` split the
    mapper wall clock by phase (unconstrained baseline vs ring-constrained
    paged mapping).  ``search`` is present when the compile ran through the
    speculative portfolio engine: probe launch/cancel/waste totals plus the
    per-ladder (II, attempt) outcome timelines.
    """

    kernel: str
    size: int
    page_size: int
    seconds: float
    base_map_seconds: float
    paged_map_seconds: float
    counters: dict[str, int]
    search: dict | None = field(default=None)
    arch: str | None = field(default=None)
    backend: str = "flat"

    def as_record(self) -> dict:
        rec = {
            "kernel": self.kernel,
            "size": self.size,
            "page_size": self.page_size,
            "seconds": round(self.seconds, 4),
            "base_map_seconds": round(self.base_map_seconds, 4),
            "paged_map_seconds": round(self.paged_map_seconds, 4),
            "counters": dict(self.counters),
        }
        if self.search is not None:
            rec["search"] = dict(self.search)
        if self.arch is not None:
            rec["arch"] = self.arch
        if self.backend != "flat":
            rec["backend"] = self.backend
        return rec


def job_key(job: CompileJob) -> ArtifactKey:
    """Content address of *job*: structural DFG hash, architecture hash
    (grid plus page geometry), mapper-configuration hash."""
    dfg = get_kernel(job.kernel).build()
    cgra = job.build_cgra()
    shape = choose_page_shape(job.page_size, cgra.rows, cgra.cols, job.prefer)
    arch_fp = canonical_fingerprint(
        {"cgra": cgra.fingerprint(), "page_shape": list(shape)}
    )
    return ArtifactKey(dfg.fingerprint(), arch_fp, job.mapper_config.fingerprint())


def compile_job(job: CompileJob, search=None) -> tuple[CompiledKernel, float]:
    """Compile one job, uncached.  Returns (artifact, mapper seconds).

    Top-level (picklable) so callers can run it in worker processes;
    deterministic for a fixed job, so parallel and serial runs produce
    byte-identical artifacts.  *search* is an optional live
    :class:`~repro.compiler.search.SearchContext` — when set, the mapping
    ladders race speculative probes over its shared worker pool.
    """
    artifact, stats = compile_job_stats(job, search=search)
    return artifact, stats.seconds


def _search_record(log) -> dict:
    """Compress a job's ladder reports into the ``CompileStats.search``
    record: probe totals, speculation efficiency, per-ladder timelines."""
    useful = sum(r.useful_seconds for r in log)
    wasted = sum(r.wasted_seconds for r in log)
    total = useful + wasted
    return {
        "ladders": len(log),
        "probes_launched": sum(r.probes_launched for r in log),
        "probes_cancelled": sum(r.probes_cancelled for r in log),
        "probes_wasted": sum(r.probes_wasted for r in log),
        "useful_seconds": round(useful, 4),
        "wasted_seconds": round(wasted, 4),
        "speculation_efficiency": round(useful / total, 4) if total > 0 else 1.0,
        "timeline": [r.as_record() for r in log],
    }


def compile_job_stats(
    job: CompileJob, search=None
) -> tuple[CompiledKernel, CompileStats]:
    """Compile one job, uncached, with per-phase timings and the mapper's
    search-effort counter deltas (the ``compile-speed`` bench's input).

    The compile runs inside a per-job counter context
    (:func:`repro.compiler.stats.job_counters`): the mapper's increments
    land on this thread's private instances and merge into the process-wide
    totals when the job finishes, so per-job attribution is *exact* even
    when several jobs compile concurrently on sibling threads — and the
    cumulative totals stay exactly what they always were.
    """
    started = time.perf_counter()
    key = job_key(job)
    dfg = get_kernel(job.kernel).build()
    cgra = job.build_cgra()
    layout = make_layout(cgra, job.page_size, job.prefer)
    config = job.mapper_config
    search_log: list = [] if search is not None else None
    with job_counters() as (job_ctrs, _job_search):
        base_started = time.perf_counter()
        base = map_dfg(
            dfg, cgra, config=config, search=search, search_log=search_log
        )
        base_seconds = time.perf_counter() - base_started
        paged_started = time.perf_counter()
        try:
            paged = map_dfg_paged(
                dfg, cgra, layout, config=config, search=search,
                search_log=search_log,
            )
        except MappingError:
            paged = None
        paged_seconds = time.perf_counter() - paged_started
    common = dict(
        kernel=job.kernel,
        rows=cgra.rows,
        cols=cgra.cols,
        rf_depth=cgra.rf_depth,
        mem_ports_per_row=cgra.mem_ports_per_row,
        page_shape=layout.shape,
        capability=cgra.capability.classes if cgra.capability is not None else None,
        seed=job.seed,
        dfg_fp=key.dfg_fp,
        arch_fp=key.arch_fp,
        mapper_fp=key.mapper_fp,
        ii_base=base.ii,
    )
    stats = CompileStats(
        kernel=job.kernel,
        size=job.size,
        page_size=job.page_size,
        seconds=time.perf_counter() - started,
        base_map_seconds=base_seconds,
        paged_map_seconds=paged_seconds,
        counters=job_ctrs.as_dict(),
        search=_search_record(search_log) if search_log is not None else None,
        arch=job.arch,
        backend=job.backend,
    )
    if paged is None:
        artifact = CompiledKernel(layout_wrap=False, unmappable=True, **common)
        return artifact, stats
    steady = tuple(
        (m, ii.numerator, ii.denominator)
        for m in range(1, paged.pages_used + 1)
        for ii in [
            steady_state_ii(
                paged.pages_used, paged.ii, m, wrap_used=paged.wrap_used
            )
        ]
    )
    artifact = CompiledKernel(
        layout_wrap=paged.layout.allow_wrap,
        ii_paged=paged.ii,
        pages_used=paged.pages_used,
        wrap_used=paged.wrap_used,
        placements=tuple(
            (p.op_id, p.pe.row, p.pe.col, p.time)
            for p in sorted(
                paged.mapping.placements.values(), key=lambda p: p.op_id
            )
        ),
        routes=tuple(
            (
                r.edge_id,
                tuple((s.pe.row, s.pe.col, s.time) for s in r.steps),
                (r.tap.pe.row, r.tap.pe.col, r.tap.time) if r.tap else None,
            )
            for r in sorted(paged.mapping.routes.values(), key=lambda r: r.edge_id)
        ),
        steady_ii=steady,
        **common,
    )
    return artifact, stats


@dataclass(frozen=True)
class CompileFailure:
    """Structured per-job failure from :func:`compile_many_outcomes`.

    One failing job no longer aborts a whole batch: the outcome list
    carries a ``CompileFailure`` in that job's slot (error class name plus
    message) while every other job still compiles, is stored, and is
    returned — which is what lets a multi-tenant service answer each
    coalesced waiter with *its* request's error instead of failing all of
    them on a sibling's exception.
    """

    job: CompileJob
    error: str
    message: str
    #: The original exception, for in-process callers that re-raise; not
    #: part of equality and never serialized (services ship error/message).
    cause: Exception | None = field(default=None, compare=False, repr=False)

    def raise_(self) -> None:
        """Re-raise the original exception (a :class:`MappingError` when
        the failure crossed a serialization boundary and lost it)."""
        if self.cause is not None:
            raise self.cause
        raise MappingError(f"{self.job.kernel}: {self.error}: {self.message}")


def _coordination_threads(n_pending: int, workers: int) -> int:
    """Thread count for the per-miss coordination fan-out: one per miss,
    bounded by :data:`MAX_COORDINATION_THREADS` (but never fewer than the
    probe pool, so *workers* processes are never starved of feeders)."""
    return min(n_pending, max(workers, MAX_COORDINATION_THREADS))


def _job_outcome(job: CompileJob, search=None):
    """Compile one job, capturing any exception as a structured failure."""
    try:
        return compile_job(job, search=search)
    except Exception as exc:  # noqa: BLE001 - isolated per-job, reported upstream
        return CompileFailure(
            job=job, error=type(exc).__name__, message=str(exc), cause=exc
        )


def compile_many_outcomes(
    jobs: Iterable[CompileJob],
    *,
    store: ArtifactStore | None = None,
    workers: int = 1,
) -> list[CompiledKernel | CompileFailure]:
    """Compile *jobs*, returning one outcome per job in input order.

    Like :func:`compile_many`, but per-job failures are isolated: a job
    whose compile raises yields a :class:`CompileFailure` in its slot
    instead of aborting the batch, and every other job's artifact is still
    compiled, stored, and returned.  Successful outcomes are
    byte-identical to a batch with the failing jobs removed.
    """
    jobs = list(jobs)
    resolved: dict[CompileJob, CompiledKernel | CompileFailure] = {}
    pending: list[CompileJob] = []
    for job in jobs:
        if job in resolved or job in pending:
            continue
        if store is not None:
            # key computation builds the DFG and the fabric, so a bad job
            # (unknown kernel, preset/size mismatch) fails here — isolate
            # it like any other per-job failure instead of aborting the batch
            try:
                hit = store.get(job_key(job))
            except Exception as exc:  # noqa: BLE001 - reported per job
                resolved[job] = CompileFailure(
                    job=job, error=type(exc).__name__, message=str(exc), cause=exc
                )
                continue
        else:
            hit = None
        if hit is not None:
            resolved[job] = hit
        else:
            pending.append(job)
    if pending:
        if workers > 1:
            from repro.compiler.search import SearchContext

            with SearchContext.create(workers) as ctx:
                # Bounded orchestration threads: each blocks on probe
                # futures, so the thread count is about coordination, not
                # CPU — the shared budget bounds actual parallelism, and
                # misses beyond the cap queue in input order.
                n_threads = _coordination_threads(len(pending), workers)
                with ThreadPoolExecutor(max_workers=n_threads) as tp:
                    compiled = list(
                        tp.map(lambda j: _job_outcome(j, search=ctx), pending)
                    )
        else:
            compiled = [_job_outcome(job) for job in pending]
        for job, outcome in zip(pending, compiled):
            if isinstance(outcome, CompileFailure):
                resolved[job] = outcome
                continue
            artifact, seconds = outcome
            resolved[job] = artifact
            if store is not None:
                store.note_compile_time(seconds)
                store.put(artifact)
    return [resolved[job] for job in jobs]


def compile_many(
    jobs: Iterable[CompileJob],
    *,
    store: ArtifactStore | None = None,
    workers: int = 1,
) -> list[CompiledKernel]:
    """Compile *jobs*, returning artifacts in input order.

    Warm jobs are served from *store* without touching the mapper;
    duplicate jobs are compiled once.  With ``workers > 1`` the misses run
    concurrently through the speculative portfolio engine: one shared pool
    of *workers* probe processes serves every miss's (II, attempt) ladder,
    under a shared budget so kernel-level and attempt-level parallelism
    never oversubscribe — each miss holds at least one probe slot, and
    idle slots drain into speculative probes of the stragglers.  Results
    are byte-identical to the serial path, only wall-clock changes.

    A failing job raises (the first failure in input order) after the
    rest of the batch has compiled and been stored; callers that need
    per-job errors use :func:`compile_many_outcomes`.
    """
    outcomes = compile_many_outcomes(jobs, store=store, workers=workers)
    for outcome in outcomes:
        if isinstance(outcome, CompileFailure):
            outcome.raise_()
    return outcomes


def compile_kernel(
    kernel: str,
    size: int,
    page_size: int,
    *,
    prefer: str = "square",
    seed: int = 0,
    mapper: MapperConfig | None = None,
    store: ArtifactStore | None = None,
) -> CompiledKernel:
    """Compile (or load) one kernel for one configuration."""
    job = CompileJob(kernel, size, page_size, prefer=prefer, seed=seed, mapper=mapper)
    return compile_many([job], store=store)[0]


def build_profiles(
    size: int,
    page_size: int,
    *,
    prefer: str = "square",
    seed: int = 0,
    store: ArtifactStore | None = None,
    kernels: Sequence[str] | None = None,
    workers: int = 1,
):
    """:class:`~repro.sim.system.KernelProfile` per mappable suite kernel
    on one configuration — the system simulator's input."""
    names = list(kernels) if kernels is not None else kernel_names()
    artifacts = compile_many(
        [
            CompileJob(name, size, page_size, prefer=prefer, seed=seed)
            for name in names
        ],
        store=store,
        workers=workers,
    )
    profiles = {}
    for artifact in artifacts:
        profile = artifact.profile()
        if profile is not None:
            profiles[profile.name] = profile
    return profiles
