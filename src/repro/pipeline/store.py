"""Content-addressed, on-disk store of compilation artifacts.

One artifact per file, addressed purely by content fingerprints —
``sha256(dfg_fp / arch_fp / mapper_fp)`` — so a cache entry can never be
stale: any change to the kernel's DFG, the CGRA description, or the mapper
tuning changes the address, and the old entry is simply never looked up
again.  There is no schema-version-keyed invalidation dance to forget
(bumping :data:`~repro.pipeline.artifact.ARTIFACT_VERSION` suffices when
the artifact encoding itself changes).

Writes are atomic (temp file + ``os.replace``), so a crashed or concurrent
compile can never leave a half-written artifact behind.  Temp names embed
pid, thread id and a per-store sequence number, so two threads persisting
the same key in one process never share a ``.tmp`` path (a pid-only name
would let one thread ``os.replace`` the other's half-written file).  Reads
are corruption-tolerant: an unreadable or mismatched file is *logged* as a
warning — never silently swallowed — and treated as a miss.

The store counts hits, misses, writes and mapper seconds, which is how the
bench CLI reports cache effectiveness (a warm ``python -m repro.bench``
run shows zero misses — zero mapper invocations).  The counters are
guarded by a per-store lock — the same merge discipline as the compiler's
process-wide stat totals (:mod:`repro.compiler.stats`) — so concurrent
service handlers never lose increments.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
from pathlib import Path

from repro.pipeline.artifact import CompiledKernel, ArtifactKey
from repro.util.errors import ArtifactError

__all__ = ["ArtifactStore", "STORE_DIRNAME"]

logger = logging.getLogger(__name__)

#: Default store directory, created under ``$REPRO_CACHE_DIR`` (or ".").
STORE_DIRNAME = ".repro_artifacts"


class ArtifactStore:
    """Filesystem store of :class:`CompiledKernel` artifacts."""

    def __init__(self, root: Path | str | None = None) -> None:
        if root is None:
            base = os.environ.get("REPRO_CACHE_DIR", ".")
            root = Path(base) / STORE_DIRNAME
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.compile_seconds = 0.0
        #: Guards the counters above: handlers on concurrent service
        #: threads increment through it so no update is ever lost.
        self._lock = threading.Lock()
        #: Per-store temp-name sequence; pid + thread id + this counter
        #: make every in-flight ``put`` temp path unique.
        self._tmp_seq = itertools.count()

    # -- addressing -----------------------------------------------------------------

    def path_for(self, key: ArtifactKey) -> Path:
        digest = key.digest
        return self.root / digest[:2] / f"{digest}.json"

    def walk(self):
        """Yield ``(path, is_artifact)`` for every file under the store.

        The scan is explicitly sorted at each directory level, so iteration
        order is a pure function of store content — never of readdir order.
        ``is_artifact`` is True when the path has the sharded
        content-addressed shape (``ab/<sha256>.json``); anything else is a
        foreign file the store tolerates (and the auditor reports).
        """
        from repro.analysis.audit import ARTIFACT_NAME_RE

        if not self.root.is_dir():
            return
        for child in sorted(self.root.rglob("*")):
            if child.is_file():
                rel = child.relative_to(self.root).as_posix()
                yield child, ARTIFACT_NAME_RE.match(rel) is not None

    def audit(self):
        """Audit every stored artifact from bytes alone; see
        :func:`repro.analysis.audit.audit_store`."""
        from repro.analysis.audit import audit_store

        return audit_store(self)

    # -- access ---------------------------------------------------------------------

    def get(self, key: ArtifactKey) -> CompiledKernel | None:
        """The stored artifact for *key*, or None (counted as a miss).

        Unreadable files — corrupt JSON, foreign schema versions, content
        that does not match its address — are reported via
        ``logging.warning`` and treated as misses; the next ``put``
        overwrites them.
        """
        path = self.path_for(key)
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            self._count_miss()
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("discarding unreadable artifact %s: %s", path, exc)
            self._count_miss()
            return None
        try:
            artifact = CompiledKernel.from_json_dict(raw)
        except ArtifactError as exc:
            logger.warning("discarding incompatible artifact %s: %s", path, exc)
            self._count_miss()
            return None
        if artifact.key != key:
            logger.warning(
                "artifact %s does not match its address (have %s, want %s)",
                path,
                artifact.key,
                key,
            )
            self._count_miss()
            return None
        with self._lock:
            self.hits += 1
        return artifact

    def put(self, artifact: CompiledKernel) -> Path | None:
        """Persist *artifact* atomically; best-effort but never silent."""
        path = self.path_for(artifact.key)
        with self._lock:
            seq = next(self._tmp_seq)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.{seq}.tmp"  # repro: allow[DET-WALL-CLOCK] pid/tid/seq only name the temp file for atomic replace; never reach artifact bytes
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(artifact.to_json())
            os.replace(tmp, path)
        except OSError as exc:
            logger.warning("could not persist artifact %s: %s", path, exc)
            tmp.unlink(missing_ok=True)
            return None
        with self._lock:
            self.puts += 1
        return path

    # -- accounting -----------------------------------------------------------------

    def _count_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def note_compile_time(self, seconds: float) -> None:
        with self._lock:
            self.compile_seconds += seconds

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = self.misses = self.puts = 0
            self.compile_seconds = 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "compile_seconds": round(self.compile_seconds, 3),
            }

    def describe(self) -> str:
        stats = self.stats()
        return (
            f"artifact cache ({self.root}): {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['puts']} write(s), "
            f"{stats['compile_seconds']:.1f}s compiling"
        )
