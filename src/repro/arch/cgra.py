"""Top-level CGRA architecture description.

Bundles the pieces of Fig. 1 into one immutable-ish description object that
the compiler, the paging layer and the simulators all consume: grid size,
interconnect flavour, rotating-register-file depth, and the per-row data-bus
memory port model (§III: "a shared data bus for each row of the CGRA").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.interconnect import Coord, Interconnect
from repro.util.errors import ArchitectureError
from repro.util.fingerprint import canonical_fingerprint

__all__ = ["CGRA"]


@dataclass
class CGRA:
    """A coarse-grained reconfigurable array.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (the paper evaluates 4x4, 6x6 and 8x8).
    rf_depth:
        Rotating registers per PE.  The paper's architecture-support
        requirement (§VI-E) is *N* registers, N = number of pages, so a
        whole-array schedule can always be folded onto one page; callers
        building paged systems should size this accordingly.
    mem_ports_per_row:
        How many memory operations one row's data bus can serve per cycle.
    diagonal, torus:
        Interconnect flavour; the paper uses a plain 4-neighbour mesh.
    """

    rows: int
    cols: int
    rf_depth: int = 8
    mem_ports_per_row: int = 1
    diagonal: bool = False
    torus: bool = False
    interconnect: Interconnect = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ArchitectureError(f"bad grid {self.rows}x{self.cols}")
        if self.rf_depth <= 0:
            raise ArchitectureError(f"rf_depth must be >= 1, got {self.rf_depth}")
        if self.mem_ports_per_row <= 0:
            raise ArchitectureError(
                f"mem_ports_per_row must be >= 1, got {self.mem_ports_per_row}"
            )
        self.interconnect = Interconnect(
            self.rows, self.cols, diagonal=self.diagonal, torus=self.torus
        )

    # -- convenience passthroughs ------------------------------------------------

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def grid_index(self):
        """Precomputed integer view of the fabric (Coord<->id tables,
        int adjacency, all-pairs distance matrices) — the compiler's hot
        paths run on this instead of hashing ``Coord`` objects."""
        return self.interconnect.grid_index

    def coords(self):
        return self.interconnect.coords()

    def neighbors(self, c: Coord):
        return self.interconnect.neighbors(c)

    def adjacent_or_same(self, a: Coord, b: Coord) -> bool:
        return self.interconnect.adjacent_or_same(a, b)

    def fingerprint(self) -> str:
        """Canonical structural hash of the architecture description.

        Covers every parameter that can change what the compiler produces
        (grid, register depth, memory ports, interconnect flavour), so two
        CGRA objects fingerprint equal iff a mapping for one is valid for
        the other.  Used as a cache-key component by :mod:`repro.pipeline`.
        """
        return canonical_fingerprint(
            {
                "rows": self.rows,
                "cols": self.cols,
                "rf_depth": self.rf_depth,
                "mem_ports_per_row": self.mem_ports_per_row,
                "diagonal": self.diagonal,
                "torus": self.torus,
            }
        )

    def describe(self) -> str:
        return (
            f"{self.rows}x{self.cols} CGRA "
            f"(rf_depth={self.rf_depth}, "
            f"mem_ports/row={self.mem_ports_per_row}, "
            f"{'8' if self.diagonal else '4'}-neighbour mesh"
            f"{', torus' if self.torus else ''})"
        )
