"""Top-level CGRA architecture description.

Bundles the pieces of Fig. 1 into one immutable-ish description object that
the compiler, the paging layer and the simulators all consume: grid size,
interconnect flavour, rotating-register-file depth, and the per-row data-bus
memory port model (§III: "a shared data bus for each row of the CGRA").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.capability import CapabilityMap, OpClass
from repro.arch.interconnect import Coord, Interconnect
from repro.util.errors import ArchitectureError
from repro.util.fingerprint import canonical_fingerprint

__all__ = ["CGRA"]


@dataclass
class CGRA:
    """A coarse-grained reconfigurable array.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (the paper evaluates 4x4, 6x6 and 8x8).
    rf_depth:
        Rotating registers per PE.  The paper's architecture-support
        requirement (§VI-E) is *N* registers, N = number of pages, so a
        whole-array schedule can always be folded onto one page; callers
        building paged systems should size this accordingly.
    mem_ports_per_row:
        How many memory operations one row's data bus can serve per cycle.
    diagonal, torus:
        Interconnect flavour; the paper uses a plain 4-neighbour mesh.
    capability:
        Optional per-PE op-class masks (:class:`~repro.arch.capability.
        CapabilityMap`).  ``None`` means the homogeneous fabric of the
        paper; a homogeneous map is normalized to ``None`` so the two
        spellings are indistinguishable (same fingerprint, same code
        paths).
    """

    rows: int
    cols: int
    rf_depth: int = 8
    mem_ports_per_row: int = 1
    diagonal: bool = False
    torus: bool = False
    capability: CapabilityMap | None = None
    interconnect: Interconnect = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ArchitectureError(f"bad grid {self.rows}x{self.cols}")
        if self.rf_depth <= 0:
            raise ArchitectureError(f"rf_depth must be >= 1, got {self.rf_depth}")
        if self.mem_ports_per_row <= 0:
            raise ArchitectureError(
                f"mem_ports_per_row must be >= 1, got {self.mem_ports_per_row}"
            )
        if self.capability is not None:
            if (self.capability.rows, self.capability.cols) != (self.rows, self.cols):
                raise ArchitectureError(
                    f"capability map is {self.capability.rows}x"
                    f"{self.capability.cols}, fabric is {self.rows}x{self.cols}"
                )
            if self.capability.is_homogeneous:
                self.capability = None
        self.interconnect = Interconnect(
            self.rows, self.cols, diagonal=self.diagonal, torus=self.torus
        )

    # -- convenience passthroughs ------------------------------------------------

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def grid_index(self):
        """Precomputed integer view of the fabric (Coord<->id tables,
        int adjacency, all-pairs distance matrices) — the compiler's hot
        paths run on this instead of hashing ``Coord`` objects."""
        return self.interconnect.grid_index

    def coords(self):
        return self.interconnect.coords()

    def neighbors(self, c: Coord):
        return self.interconnect.neighbors(c)

    def adjacent_or_same(self, a: Coord, b: Coord) -> bool:
        return self.interconnect.adjacent_or_same(a, b)

    # -- capabilities ------------------------------------------------------------

    @property
    def is_heterogeneous(self) -> bool:
        return self.capability is not None

    def supports_id(self, cls_: OpClass, pe_id: int) -> bool:
        """Whether the PE with row-major id *pe_id* supports *cls_*."""
        if self.capability is None:
            return True
        return self.capability.supports_id(cls_, pe_id)

    def class_mask(self, cls_: OpClass) -> tuple[bool, ...] | None:
        """Row-major support mask for *cls_*; ``None`` means every PE
        supports it (the compiler's filters become no-ops)."""
        if self.capability is None:
            return None
        return self.capability.mask(cls_)

    def class_ids(self, cls_: OpClass) -> tuple[int, ...]:
        """Sorted PE ids supporting *cls_*."""
        if self.capability is None:
            return tuple(range(self.num_pes))
        return self.capability.ids(cls_)

    def fingerprint(self) -> str:
        """Canonical structural hash of the architecture description.

        Covers every parameter that can change what the compiler produces
        (grid, register depth, memory ports, interconnect flavour, and any
        capability restriction), so two CGRA objects fingerprint equal iff
        a mapping for one is valid for the other.  Used as a cache-key
        component by :mod:`repro.pipeline`.  The capability key is emitted
        only for heterogeneous fabrics: the homogeneous default hashes the
        exact payload it always has, keeping every previously committed
        artifact address unchanged.
        """
        payload = {
            "rows": self.rows,
            "cols": self.cols,
            "rf_depth": self.rf_depth,
            "mem_ports_per_row": self.mem_ports_per_row,
            "diagonal": self.diagonal,
            "torus": self.torus,
        }
        if self.capability is not None:
            payload["capability"] = self.capability.spec()
        return canonical_fingerprint(payload)

    def describe(self) -> str:
        cap = (
            f", capability: {self.capability.describe()}"
            if self.capability is not None
            else ""
        )
        return (
            f"{self.rows}x{self.cols} CGRA "
            f"(rf_depth={self.rf_depth}, "
            f"mem_ports/row={self.mem_ports_per_row}, "
            f"{'8' if self.diagonal else '4'}-neighbour mesh"
            f"{', torus' if self.torus else ''}{cap})"
        )
