"""CGRA architecture model.

This package models the hardware substrate of the paper (Fig. 1): a 2-D grid
of processing elements (PEs) connected by a mesh interconnect, each PE an ALU
with a local rotating register file, plus a data memory with one shared bus
per row and a per-PE configuration memory written by the compiler.
"""

from repro.arch.isa import Opcode, OPCODE_INFO, evaluate, is_memory_op
from repro.arch.interconnect import Coord, Interconnect
from repro.arch.register_file import RotatingRegisterFile
from repro.arch.memory import DataMemory, ArraySpec
from repro.arch.pe import ProcessingElement
from repro.arch.capability import CapabilityMap, OpClass, op_class
from repro.arch.cgra import CGRA
from repro.arch.presets import demo_cgra, experiment_cgra, preset, preset_names
from repro.arch.config import (
    OperandSource,
    ReadNeighbor,
    ReadRotating,
    Immediate,
    AddressPattern,
    SlotConfig,
    ConfigTable,
)

__all__ = [
    "Opcode",
    "OPCODE_INFO",
    "evaluate",
    "is_memory_op",
    "Coord",
    "Interconnect",
    "RotatingRegisterFile",
    "DataMemory",
    "ArraySpec",
    "ProcessingElement",
    "CapabilityMap",
    "OpClass",
    "op_class",
    "CGRA",
    "demo_cgra",
    "experiment_cgra",
    "preset",
    "preset_names",
    "OperandSource",
    "ReadNeighbor",
    "ReadRotating",
    "Immediate",
    "AddressPattern",
    "SlotConfig",
    "ConfigTable",
]
