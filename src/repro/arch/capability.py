"""Per-PE capability model: which op classes each PE can execute.

The paper's fabric is homogeneous — every PE runs every opcode — but real
CGRAs are capability-asymmetric: commonly only some columns own a port
into the banked data memory, and cheap "router" PEs may lack a full ALU.
This module models that axis with three *op classes*:

``ALU``
    Every computing opcode that is not a memory access (arithmetic,
    logic, compare, select, const materialization).
``MEM``
    The memory opcodes (``LOAD``/``LOADT``/``STORE``); a PE needs a
    memory port to execute them.
``ROUTE``
    Holding or forwarding a value for one cycle (a route step).  Every
    compute-capable PE can also route, but the class is separate so a
    pure-router PE is expressible.

A :class:`CapabilityMap` assigns each PE (in row-major id order, matching
:class:`~repro.compiler.grid.GridIndex`) the set of classes it supports.
The canonical encoding — used both by :meth:`CGRA.fingerprint
<repro.arch.cgra.CGRA.fingerprint>` and by the artifact serialization —
lists **only the classes that are restricted** (supported by a strict
subset of PEs), as sorted ``(class, [pe ids])`` pairs.  The homogeneous
fabric therefore encodes to *nothing at all*: a ``CGRA`` without a
capability map fingerprints exactly as before this model existed, which
is what keeps every previously committed artifact address byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.arch.isa import Opcode, is_memory_op
from repro.util.errors import ArchitectureError

__all__ = ["OpClass", "op_class", "CapabilityMap", "ALL_CLASSES"]


class OpClass(Enum):
    """Coarse capability classes a PE may or may not support."""

    ALU = "alu"
    MEM = "mem"
    ROUTE = "route"


#: Every class, in canonical (enum-definition) order.
ALL_CLASSES: tuple[OpClass, ...] = tuple(OpClass)


def op_class(opcode: Opcode) -> OpClass:
    """The capability class an op with *opcode* requires of its PE."""
    if is_memory_op(opcode):
        return OpClass.MEM
    if opcode is Opcode.ROUTE:
        return OpClass.ROUTE
    return OpClass.ALU


@dataclass(frozen=True)
class CapabilityMap:
    """Immutable per-PE op-class masks for a ``rows`` x ``cols`` grid.

    ``classes`` is the canonical restricted-classes encoding: a sorted
    tuple of ``(class value, sorted tuple of supporting pe ids)`` pairs,
    one per class that is **not** supported by every PE.  PE ids are
    row-major (``id = row * cols + col``).  A class absent from
    ``classes`` is supported everywhere; a map whose ``classes`` is empty
    is homogeneous and equivalent to having no map at all.
    """

    rows: int
    cols: int
    classes: tuple[tuple[str, tuple[int, ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ArchitectureError(
                f"capability grid must be at least 1x1, got {self.rows}x{self.cols}"
            )
        n = self.rows * self.cols
        valid = {c.value for c in OpClass}
        norm: list[tuple[str, tuple[int, ...]]] = []
        seen: set[str] = set()
        for name, ids in self.classes:
            if name not in valid:
                raise ArchitectureError(f"unknown op class {name!r}")
            if name in seen:
                raise ArchitectureError(f"op class {name!r} listed twice")
            seen.add(name)
            uniq = tuple(sorted(set(int(i) for i in ids)))
            if any(i < 0 or i >= n for i in uniq):
                raise ArchitectureError(
                    f"op class {name!r} names a PE id outside [0,{n})"
                )
            if len(uniq) == n:
                continue  # universal class: canonical form omits it
            norm.append((name, uniq))
        object.__setattr__(self, "classes", tuple(sorted(norm)))

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def homogeneous(cls, rows: int, cols: int) -> "CapabilityMap":
        """Every PE supports every class (canonical empty encoding)."""
        return cls(rows, cols, ())

    @classmethod
    def mem_columns(
        cls, rows: int, cols: int, columns: Iterable[int]
    ) -> "CapabilityMap":
        """Memory ports only in *columns*; ALU/ROUTE everywhere.

        This is the first real heterogeneous configuration: fabrics whose
        memory interface runs down dedicated columns, as on the scaled
        8x8/16x16 presets (:mod:`repro.arch.presets`)."""
        cols_set = sorted(set(int(c) for c in columns))
        if not cols_set:
            raise ArchitectureError("mem_columns needs at least one column")
        if any(c < 0 or c >= cols for c in cols_set):
            raise ArchitectureError(
                f"mem column outside [0,{cols}): {cols_set}"
            )
        ids = tuple(
            r * cols + c for r in range(rows) for c in cols_set
        )
        return cls(rows, cols, ((OpClass.MEM.value, tuple(sorted(ids))),))

    # -- queries --------------------------------------------------------------------

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def is_homogeneous(self) -> bool:
        return not self.classes

    def _ids_of(self, cls_: OpClass) -> tuple[int, ...] | None:
        for name, ids in self.classes:
            if name == cls_.value:
                return ids
        return None  # universal

    def supports_id(self, cls_: OpClass, pe_id: int) -> bool:
        ids = self._ids_of(cls_)
        return ids is None or pe_id in ids

    def mask(self, cls_: OpClass) -> tuple[bool, ...] | None:
        """Row-major boolean mask for *cls_*, or ``None`` if universal."""
        ids = self._ids_of(cls_)
        if ids is None:
            return None
        members = set(ids)
        return tuple(i in members for i in range(self.num_pes))

    def ids(self, cls_: OpClass) -> tuple[int, ...]:
        """Sorted PE ids supporting *cls_* (all ids if universal)."""
        found = self._ids_of(cls_)
        if found is None:
            return tuple(range(self.num_pes))
        return found

    def spec(self) -> list[list] | None:
        """Canonical JSON-able encoding, ``None`` when homogeneous."""
        if self.is_homogeneous:
            return None
        return [[name, list(ids)] for name, ids in self.classes]

    @classmethod
    def from_spec(
        cls, rows: int, cols: int, spec: Sequence[Sequence] | None
    ) -> "CapabilityMap | None":
        """Inverse of :meth:`spec`; ``None`` spec means homogeneous."""
        if spec is None:
            return None
        classes = tuple(
            (str(name), tuple(int(i) for i in ids)) for name, ids in spec
        )
        return cls(rows, cols, classes)

    def describe(self) -> str:
        if self.is_homogeneous:
            return "homogeneous (all PEs support all op classes)"
        parts = [
            f"{name}: {len(ids)}/{self.num_pes} PEs" for name, ids in self.classes
        ]
        return "restricted " + ", ".join(parts)
