"""Processing element behavioural model.

One PE of Fig. 1: an ALU fed by neighbour outputs/immediates, writing every
result into its rotating register file (whose most recent entry doubles as
the output register neighbours read).  The cycle-accurate simulator keeps
one :class:`ProcessingElement` per active grid position; memory operations
are executed by the memory system, with the PE committing the moved value.
"""

from __future__ import annotations

from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode, evaluate
from repro.arch.register_file import RotatingRegisterFile
from repro.util.errors import SimulationError

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """ALU + rotating register file at one grid position."""

    def __init__(self, coord: Coord, rf_depth: int) -> None:
        self.coord = coord
        self.rf = RotatingRegisterFile(rf_depth)
        self.firings = 0

    def execute(
        self,
        opcode: Opcode,
        operands: list[int],
        immediate: int | None,
        cycle: int,
    ) -> int:
        """Perform a non-memory operation and commit its result."""
        value = evaluate(opcode, operands, immediate)
        self.commit(cycle, value)
        return value

    def commit(self, cycle: int, value: int) -> None:
        """Record a produced value (ALU result or memory-moved datum)."""
        self.rf.push(cycle, value)
        self.firings += 1

    def read_output(self, produced_cycle: int) -> int:
        """Read the value this PE produced at *produced_cycle* — depth 1 is
        the output register, deeper entries are rotating-file reads."""
        return self.rf.read_produced_at(produced_cycle)

    def depth_of(self, produced_cycle: int) -> int:
        """How deep into the rotating file a read of *produced_cycle*
        reaches (1 = the newest entry)."""
        depth = self.rf.depth_of(produced_cycle)
        if depth == 0:
            raise SimulationError(
                f"PE {self.coord}: no value from cycle {produced_cycle} in file"
            )
        return depth
