"""Rotating register file of a PE.

The paper (§II, §VI-E) requires each PE to carry a small *rotating* register
file: every value a PE produces is pushed into the file, and a reader can
address "the value this PE produced *k* firings ago".  Rotation is what makes
modulo-scheduled code work without explicit move instructions (Rau's rotating
registers), and the paper's architecture-support section states that *N*
rotating registers per PE are what allow a whole-CGRA schedule to be shrunk
onto a single page: while a folded schedule stretches producer-to-consumer
distances from 1 cycle up to ~N cycles, the producing PE keeps the value
alive in its rotating file.

The simulator models the file as a bounded history of produced values indexed
by the cycle of production; :meth:`read_produced_at` enforces the capacity so
any transformed schedule that would need a deeper file than the architecture
provides fails loudly instead of silently reading stale data.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util.errors import SimulationError

__all__ = ["RotatingRegisterFile"]


class RotatingRegisterFile:
    """Bounded history of the values one PE produced.

    ``depth`` is the number of rotating registers.  ``push`` records the
    value produced in a given cycle; pushes must come in increasing cycle
    order (a PE produces at most one value per cycle).  ``read_produced_at``
    returns the value produced at an earlier cycle, provided fewer than
    ``depth`` newer values have displaced it.
    """

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise SimulationError(f"register file depth must be >= 1, got {depth}")
        self.depth = depth
        self._history: OrderedDict[int, int] = OrderedDict()
        self._last_cycle: int | None = None
        self.max_occupancy = 0  # high-water mark, reported as RF pressure

    def push(self, cycle: int, value: int) -> None:
        """Record that this PE produced *value* in *cycle*."""
        if self._last_cycle is not None and cycle <= self._last_cycle:
            raise SimulationError(
                f"register file pushes must be time-ordered: "
                f"cycle {cycle} after {self._last_cycle}"
            )
        self._last_cycle = cycle
        self._history[cycle] = value
        while len(self._history) > self.depth:
            self._history.popitem(last=False)
        self.max_occupancy = max(self.max_occupancy, len(self._history))

    def read_produced_at(self, cycle: int) -> int:
        """Return the value produced at exactly *cycle*.

        Raises :class:`SimulationError` if the value was never produced or
        has already rotated out of the file — i.e. the schedule needs a
        deeper register file than this architecture has.
        """
        try:
            return self._history[cycle]
        except KeyError:
            raise SimulationError(
                f"value produced at cycle {cycle} is not in the rotating "
                f"register file (depth {self.depth}); schedule requires more "
                f"rotating registers than the architecture provides"
            ) from None

    def depth_of(self, produced_cycle: int) -> int:
        """How many retained entries are at least as new as the value from
        *produced_cycle* (0 if the value is absent): the register-file
        depth a read of that value requires."""
        if produced_cycle not in self._history:
            return 0
        return sum(1 for c in self._history if c >= produced_cycle)

    def latest(self) -> int | None:
        """The most recently produced value (the PE's output register)."""
        if not self._history:
            return None
        return next(reversed(self._history.values()))

    def occupancy(self) -> int:
        return len(self._history)

    def clear(self) -> None:
        self._history.clear()
        self._last_cycle = None
