"""Canonical fabric presets.

Every experiment in the repository runs on one of a handful of fabrics;
before this module each call site rebuilt them from literals
(``CGRA(4, 4, rf_depth=16)`` was repeated across the package docstring,
``__main__``, the examples, and the benches).  The presets give those
fabrics names and one construction path:

========== ===== ========== ============================================
name       grid  rf depth   capabilities
========== ===== ========== ============================================
4x4        4x4   16         homogeneous (the paper's fabric)
6x6        6x6   24         homogeneous
8x8        8x8   32         homogeneous
16x16      16x16 64         homogeneous
4x4-memcols   4x4   16      memory ports on even columns only
6x6-memcols   6x6   24      memory ports on even columns only
8x8-memcols   8x8   32      memory ports on even columns only
16x16-memcols 16x16 64      memory ports on even columns only
========== ===== ========== ============================================

The register-file depth follows the repository-wide ``4 * size`` rule
(:func:`experiment_cgra`), so ``preset("4x4")`` is *exactly* the demo
fabric the README and quick-tour build — same fingerprint, same artifact
addresses.  The ``-memcols`` variants put a memory port in every even
column (:meth:`~repro.arch.capability.CapabilityMap.mem_columns`), so
every page tile at least two columns wide contains mem-capable PEs
(single-column ``ps=2`` tiles on odd columns hold none — the mapper then
clusters memory ops onto the even-column pages).
"""

from __future__ import annotations

from typing import Callable

from repro.arch.capability import CapabilityMap
from repro.arch.cgra import CGRA
from repro.util.errors import ArchitectureError

__all__ = [
    "PRESET_SIZES",
    "preset",
    "preset_names",
    "experiment_cgra",
    "demo_cgra",
    "mem_columns_for",
]

#: Grid sizes with a registered preset.
PRESET_SIZES: tuple[int, ...] = (4, 6, 8, 16)


def experiment_cgra(size: int) -> CGRA:
    """The homogeneous ``size`` x ``size`` experiment fabric.

    Register-file depth scales with the grid (``4 * size``) exactly as
    the figure-8/9 pipelines have always built it."""
    if size < 2:
        raise ArchitectureError(f"experiment fabric needs size >= 2, got {size}")
    return CGRA(size, size, rf_depth=4 * size)


def demo_cgra() -> CGRA:
    """The 4x4 demo fabric used by the quick tour, README and examples
    (identical to ``preset("4x4")``)."""
    return experiment_cgra(4)


def mem_columns_for(size: int) -> tuple[int, ...]:
    """The even columns — the ``-memcols`` presets' memory interface."""
    return tuple(range(0, size, 2))


def _memcols_cgra(size: int) -> CGRA:
    cap = CapabilityMap.mem_columns(size, size, mem_columns_for(size))
    return CGRA(size, size, rf_depth=4 * size, capability=cap)


def _builders() -> dict[str, Callable[[], CGRA]]:
    reg: dict[str, Callable[[], CGRA]] = {}
    for size in PRESET_SIZES:
        reg[f"{size}x{size}"] = lambda s=size: experiment_cgra(s)
        reg[f"{size}x{size}-memcols"] = lambda s=size: _memcols_cgra(s)
    return reg


_REGISTRY = _builders()


def preset_names() -> list[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def preset(name: str) -> CGRA:
    """Build a fresh CGRA for preset *name* (see the module table)."""
    try:
        build = _REGISTRY[name]
    except KeyError:
        raise ArchitectureError(
            f"unknown fabric preset {name!r}; known: {', '.join(preset_names())}"
        ) from None
    return build()
