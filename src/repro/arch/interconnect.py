"""Mesh interconnect geometry of the CGRA.

The paper's CGRA (Fig. 1) is a 2-D grid of PEs where each PE "can operate on
the results of its neighboring PEs" in the next cycle.  This module owns
coordinates, the neighbourhood relation, and distance queries; it is purely
geometric — slot occupancy lives in the compiler's reservation tables.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import ArchitectureError

__all__ = ["Coord", "GridIndex", "Interconnect"]


@dataclass(frozen=True, order=True)
class Coord:
    """Position of a PE in the grid: row-major, (row, col)."""

    row: int
    col: int

    def manhattan(self, other: "Coord") -> int:
        return abs(self.row - other.row) + abs(self.col - other.col)

    def __repr__(self) -> str:  # compact, used heavily in traces
        return f"({self.row},{self.col})"


class GridIndex:
    """Immutable integer view of one :class:`Interconnect`.

    The compiler's inner loops (reservation lookups, route search) run
    millions of state expansions per kernel; hashing ``Coord`` dataclasses
    and recomputing distances there dominates cold-compile time.  This
    index precomputes, once per fabric:

    * ``coords`` / ``id_of`` — the Coord <-> integer PE id bijection
      (row-major, identical to :meth:`Interconnect.index`);
    * ``neighbor_ids`` / ``reach1_ids`` — the adjacency lists as tuples of
      int ids, in exactly the order :meth:`Interconnect.neighbors` /
      :meth:`Interconnect.reachable_in_one` yield them (candidate order is
      part of the mapper's observable behaviour — artifacts are
      content-addressed, so iteration order must never drift);
    * ``manhattan`` — the all-pairs Manhattan distance matrix (the router's
      pruning bound and the placer's anchor metric);
    * ``hop_dist`` — the all-pairs true hop-distance matrix (BFS over the
      actual links, so it respects ``diagonal``/``torus`` flavours).

    Everything is a flat tuple of tuples: reads are two indexed loads, no
    hashing anywhere.
    """

    def __init__(self, ic: "Interconnect") -> None:
        self.rows = ic.rows
        self.cols = ic.cols
        self.num_pes = ic.num_pes
        self.coords: tuple[Coord, ...] = tuple(ic.coords())
        self.id_of: dict[Coord, int] = {c: i for i, c in enumerate(self.coords)}
        self.neighbor_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(self.id_of[n] for n in ic.neighbors(c)) for c in self.coords
        )
        self.reach1_ids: tuple[tuple[int, ...], ...] = tuple(
            (i,) + nbrs for i, nbrs in enumerate(self.neighbor_ids)
        )
        self.manhattan: tuple[tuple[int, ...], ...] = tuple(
            tuple(a.manhattan(b) for b in self.coords) for a in self.coords
        )
        self.hop_dist: tuple[tuple[int, ...], ...] = tuple(
            self._bfs_dists(i) for i in range(self.num_pes)
        )

    def _bfs_dists(self, src: int) -> tuple[int, ...]:
        dist = [-1] * self.num_pes
        dist[src] = 0
        q = deque([src])
        while q:
            u = q.popleft()
            for v in self.neighbor_ids[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return tuple(dist)


class Interconnect:
    """2-D mesh neighbourhood over an ``rows x cols`` grid.

    ``diagonal=True`` adds the 8-neighbourhood used by some CGRAs
    (e.g. MorphoSys intra-quadrant links); the paper's experiments use the
    plain 4-neighbour mesh, which is the default.  ``torus=True`` wraps the
    edges.  A PE is always considered connected to itself: a PE can consume
    its own previous output (the Fig. 1 datapath feeds the RF back to the
    ALU inputs).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        diagonal: bool = False,
        torus: bool = False,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ArchitectureError(f"grid must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.diagonal = diagonal
        self.torus = torus
        self._neighbors: dict[Coord, tuple[Coord, ...]] = {}
        for c in self.coords():
            self._neighbors[c] = tuple(self._compute_neighbors(c))
        self._grid_index: GridIndex | None = None

    # -- construction helpers -------------------------------------------------

    def _compute_neighbors(self, c: Coord) -> Iterator[Coord]:
        deltas = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if self.diagonal:
            deltas += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        for dr, dc in deltas:
            r, k = c.row + dr, c.col + dc
            if self.torus:
                yield Coord(r % self.rows, k % self.cols)
            elif 0 <= r < self.rows and 0 <= k < self.cols:
                yield Coord(r, k)

    # -- queries ---------------------------------------------------------------

    def coords(self) -> Iterator[Coord]:
        """All PE coordinates in row-major order."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield Coord(r, c)

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def contains(self, c: Coord) -> bool:
        return 0 <= c.row < self.rows and 0 <= c.col < self.cols

    def neighbors(self, c: Coord) -> tuple[Coord, ...]:
        """Neighbouring PEs of *c* (not including *c* itself)."""
        try:
            return self._neighbors[c]
        except KeyError:
            raise ArchitectureError(f"{c} outside {self.rows}x{self.cols} grid")

    def reachable_in_one(self, c: Coord) -> tuple[Coord, ...]:
        """PEs whose output *c* can read this cycle: self plus neighbours."""
        return (c,) + self.neighbors(c)

    def adjacent_or_same(self, a: Coord, b: Coord) -> bool:
        """True if *b*'s output register is readable by *a* (1-hop model)."""
        return a == b or b in self._neighbors[a]

    @property
    def grid_index(self) -> GridIndex:
        """The integer view of this fabric, built once on first use."""
        if self._grid_index is None:
            self._grid_index = GridIndex(self)
        return self._grid_index

    def index(self, c: Coord) -> int:
        """Row-major linear index of *c*."""
        if not self.contains(c):
            raise ArchitectureError(f"{c} outside {self.rows}x{self.cols} grid")
        return c.row * self.cols + c.col

    def coord(self, index: int) -> Coord:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.num_pes:
            raise ArchitectureError(f"PE index {index} out of range")
        return Coord(index // self.cols, index % self.cols)
