"""Operation set of a CGRA processing element.

Each PE executes one operation per cycle (Fig. 1 of the paper): an
arithmetic/logic operation, a shift, a select, a memory access, or a pure
route (copy) used to move a neighbour's value through the PE.  All
operations have single-cycle latency, the standard assumption of the
modulo-scheduling CGRA literature the paper builds on (DRESC, EMS).

Values are modelled as Python integers wrapped to 32-bit two's complement,
so kernel semantics are exact and platform independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import SimulationError

__all__ = [
    "Opcode",
    "OpInfo",
    "OPCODE_INFO",
    "evaluate",
    "is_memory_op",
    "wrap32",
]

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000


def wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    v = value & _MASK32
    return v - (1 << 32) if v & _SIGN32 else v


class Opcode(enum.Enum):
    """Micro-operations a PE can perform in one cycle."""

    # value producers without data operands
    CONST = "const"   # emit an immediate
    LOAD = "load"     # read data memory at an affine address

    # single-operand
    ROUTE = "route"   # copy the operand (routing PE behaviour, §II)
    NEG = "neg"
    NOT = "not"
    ABS = "abs"

    # two-operand arithmetic / logic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"       # truncating signed division, div-by-zero -> 0
    MOD = "mod"
    SHL = "shl"
    SHR = "shr"       # arithmetic shift right
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"
    MAX = "max"
    LT = "lt"         # comparisons produce 0/1
    LE = "le"
    EQ = "eq"
    NE = "ne"

    # three-operand
    SELECT = "select"  # operand0 ? operand1 : operand2

    # memory write: operand0 is the stored value (passed through as the
    # result, so ordering edges can hang off a store)
    STORE = "store"
    # load ordered after a token operand (ignored): the spill pattern's
    # "read the buffer only after this iteration's store committed"
    LOADT = "loadt"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    arity: int
    is_memory: bool
    produces_value: bool
    commutative: bool = False


OPCODE_INFO: dict[Opcode, OpInfo] = {
    Opcode.CONST: OpInfo(0, False, True),
    Opcode.LOAD: OpInfo(0, True, True),
    Opcode.ROUTE: OpInfo(1, False, True),
    Opcode.NEG: OpInfo(1, False, True),
    Opcode.NOT: OpInfo(1, False, True),
    Opcode.ABS: OpInfo(1, False, True),
    Opcode.ADD: OpInfo(2, False, True, commutative=True),
    Opcode.SUB: OpInfo(2, False, True),
    Opcode.MUL: OpInfo(2, False, True, commutative=True),
    Opcode.DIV: OpInfo(2, False, True),
    Opcode.MOD: OpInfo(2, False, True),
    Opcode.SHL: OpInfo(2, False, True),
    Opcode.SHR: OpInfo(2, False, True),
    Opcode.AND: OpInfo(2, False, True, commutative=True),
    Opcode.OR: OpInfo(2, False, True, commutative=True),
    Opcode.XOR: OpInfo(2, False, True, commutative=True),
    Opcode.MIN: OpInfo(2, False, True, commutative=True),
    Opcode.MAX: OpInfo(2, False, True, commutative=True),
    Opcode.LT: OpInfo(2, False, True),
    Opcode.LE: OpInfo(2, False, True),
    Opcode.EQ: OpInfo(2, False, True, commutative=True),
    Opcode.NE: OpInfo(2, False, True, commutative=True),
    Opcode.SELECT: OpInfo(3, False, True),
    Opcode.STORE: OpInfo(1, True, True),
    Opcode.LOADT: OpInfo(1, True, True),
}


def is_memory_op(op: Opcode) -> bool:
    """True for operations that use the row data bus (LOAD/STORE)."""
    return OPCODE_INFO[op].is_memory


def evaluate(op: Opcode, operands: list[int], immediate: int | None = None) -> int:
    """Evaluate *op* on integer *operands*, returning a wrapped 32-bit value.

    ``CONST`` returns *immediate*.  Memory operations are handled by the
    simulator, not here (they need the data memory), and raise if evaluated.
    """
    info = OPCODE_INFO[op]
    if info.is_memory:
        raise SimulationError(f"{op} must be executed by the memory system")
    if len(operands) != info.arity:
        raise SimulationError(
            f"{op.value} expects {info.arity} operands, got {len(operands)}"
        )
    if op is Opcode.CONST:
        if immediate is None:
            raise SimulationError("CONST requires an immediate")
        return wrap32(immediate)
    a = operands[0] if info.arity >= 1 else 0
    b = operands[1] if info.arity >= 2 else 0
    if op is Opcode.ROUTE:
        return wrap32(a)
    if op is Opcode.NEG:
        return wrap32(-a)
    if op is Opcode.NOT:
        return wrap32(~a)
    if op is Opcode.ABS:
        return wrap32(abs(a))
    if op is Opcode.ADD:
        return wrap32(a + b)
    if op is Opcode.SUB:
        return wrap32(a - b)
    if op is Opcode.MUL:
        return wrap32(a * b)
    if op is Opcode.DIV:
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        return wrap32(-q if (a < 0) != (b < 0) else q)
    if op is Opcode.MOD:
        if b == 0:
            return 0
        r = abs(a) % abs(b)
        return wrap32(-r if a < 0 else r)
    if op is Opcode.SHL:
        return wrap32(a << (b & 31))
    if op is Opcode.SHR:
        return wrap32(a >> (b & 31))
    if op is Opcode.AND:
        return wrap32(a & b)
    if op is Opcode.OR:
        return wrap32(a | b)
    if op is Opcode.XOR:
        return wrap32(a ^ b)
    if op is Opcode.MIN:
        return wrap32(min(a, b))
    if op is Opcode.MAX:
        return wrap32(max(a, b))
    if op is Opcode.LT:
        return int(a < b)
    if op is Opcode.LE:
        return int(a <= b)
    if op is Opcode.EQ:
        return int(a == b)
    if op is Opcode.NE:
        return int(a != b)
    if op is Opcode.SELECT:
        return wrap32(operands[1] if a else operands[2])
    raise SimulationError(f"unhandled opcode {op}")
