"""On-chip data memory of the CGRA.

The paper's architecture (Fig. 1) has a data memory shared by the array, with
one data bus per row of PEs, plus "a global storage area reserved by the
compiler in the Data Memory".  This module models:

* a word-addressed memory with a symbol table of named arrays (kernel inputs
  and outputs live here), and
* a reserved *global storage area* that the runtime transformation uses to
  carry values between page instances that land on non-adjacent PEs
  (see :mod:`repro.core.mirroring` for when that happens).

Bus arbitration (at most one memory operation per row per cycle) is a
*compile-time* resource enforced by the mapper's reservation table and
re-checked by the simulator; the memory itself only does loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import SimulationError

__all__ = ["ArraySpec", "DataMemory"]


@dataclass(frozen=True)
class ArraySpec:
    """A named array bound into the data memory."""

    name: str
    base: int
    length: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.length


class DataMemory:
    """Word-addressed data memory with named arrays and a reserved area.

    ``size`` is the number of 32-bit words.  Arrays are allocated
    sequentially from address 0 with :meth:`bind_array`; the global storage
    area (used only by the runtime transformation) grows from the top of
    memory via :meth:`reserve_global_storage`.
    """

    def __init__(self, size: int = 1 << 16) -> None:
        if size <= 0:
            raise SimulationError(f"memory size must be positive, got {size}")
        self.size = size
        self._words = np.zeros(size, dtype=np.int64)
        self._arrays: dict[str, ArraySpec] = {}
        self._next_base = 0
        self._global_storage_base = size  # grows downward
        self.load_count = 0
        self.store_count = 0

    # -- allocation -------------------------------------------------------------

    def bind_array(self, name: str, values) -> ArraySpec:
        """Allocate and initialise a named array; returns its spec."""
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already bound")
        data = np.asarray(values, dtype=np.int64)
        if data.ndim != 1:
            raise SimulationError(f"array {name!r} must be 1-D, got {data.ndim}-D")
        length = int(data.shape[0])
        if self._next_base + length > self._global_storage_base:
            raise SimulationError(
                f"out of data memory binding {name!r} "
                f"({length} words at {self._next_base})"
            )
        spec = ArraySpec(name, self._next_base, length)
        self._words[spec.base : spec.base + length] = data
        self._arrays[name] = spec
        self._next_base += length
        return spec

    def alloc_array(self, name: str, length: int, fill: int = 0) -> ArraySpec:
        """Allocate a named output array of *length* words."""
        return self.bind_array(name, np.full(length, fill, dtype=np.int64))

    def reserve_global_storage(self, words: int) -> int:
        """Reserve *words* at the top of memory for the transformation.

        Returns the base address of the reserved block.  This is the
        paper's "global storage area reserved by the compiler".
        """
        if words < 0:
            raise SimulationError(f"cannot reserve {words} words")
        base = self._global_storage_base - words
        if base < self._next_base:
            raise SimulationError(
                f"global storage of {words} words collides with arrays "
                f"(top of arrays at {self._next_base})"
            )
        self._global_storage_base = base
        return base

    # -- access -----------------------------------------------------------------

    def array(self, name: str) -> ArraySpec:
        try:
            return self._arrays[name]
        except KeyError:
            raise SimulationError(f"no array named {name!r}") from None

    def read_array(self, name: str) -> np.ndarray:
        """A copy of the named array's current contents."""
        spec = self.array(name)
        return self._words[spec.base : spec.base + spec.length].copy()

    def load(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise SimulationError(f"load address {addr} out of range [0,{self.size})")
        self.load_count += 1
        return int(self._words[addr])

    def store(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise SimulationError(f"store address {addr} out of range [0,{self.size})")
        self.store_count += 1
        self._words[addr] = int(value)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Contents of every named array, for end-to-end comparisons."""
        return {name: self.read_array(name) for name in self._arrays}
