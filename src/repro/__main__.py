"""``python -m repro`` — a five-minute guided demo of the reproduction.

Compiles a kernel under the paper's paging constraints, shows the mapping
and its page-level schedule, shrinks it with PageMaster, executes both
schedules cycle-accurately, and finishes with a miniature multithreading
experiment.  For the full figure suite use ``python -m repro.bench``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import viz
from repro.arch.presets import demo_cgra
from repro.compiler import map_dfg_paged
from repro.compiler.constraints import paged_bus_key
from repro.core.pagemaster import PageMaster
from repro.core.paging import PageLayout
from repro.kernels import bind_memory, get_kernel
from repro.pipeline import ArtifactStore, build_profiles
from repro.sim import (
    lower_mapping,
    required_batches,
    retarget_firings,
    simulate,
)
from repro.sim.system import SystemConfig, improvement, simulate_system
from repro.sim.workload import generate_workload


def main(kernel: str = "mpeg") -> int:
    trip = 24
    cgra = demo_cgra()
    layout = PageLayout(cgra, (2, 2))
    print(viz.render_layout(layout))

    spec = get_kernel(kernel)
    paged = map_dfg_paged(spec.build(), cgra, layout)
    print()
    print(viz.render_mapping(paged.mapping, max_slots=2))
    print()
    print(viz.render_page_schedule(paged.page_schedule))

    dfg, arrays, expected = spec.fresh(seed=1, trip=trip)
    mem = bind_memory(arrays)
    full = simulate(
        lower_mapping(paged.mapping, mem, trip),
        cgra,
        mem,
        bus_key=paged_bus_key(paged.layout),
    )
    ok = all(np.array_equal(mem.snapshot()[k], expected[k]) for k in expected)
    print(f"\nfull-size execution: {full.summary()}  correct={ok}")

    m = max(1, paged.pages_used // 2)
    placement = PageMaster(
        paged.pages_used, paged.ii, m, wrap_used=paged.wrap_used
    ).place(batches=required_batches(paged.mapping, trip))
    print()
    print(viz.render_placement(placement, max_rows=8))
    _, arrays2, _ = spec.fresh(seed=1, trip=trip)
    mem2 = bind_memory(arrays2)
    shrunk = simulate(
        retarget_firings(paged, placement, list(range(m)), mem2, trip),
        cgra,
        mem2,
        bus_key=paged_bus_key(paged.layout),
        rf_depth=32,
    )
    ok2 = all(np.array_equal(mem2.snapshot()[k], expected[k]) for k in expected)
    print(
        f"\nshrunk to {m} page(s): {shrunk.summary()}  correct={ok2}  "
        f"slowdown x{shrunk.cycles / full.cycles:.2f}"
    )

    print("\nminiature Fig. 9 (4 threads, 75% CGRA need):")
    profiles = build_profiles(4, 4, store=ArtifactStore())
    nominal = {k: p.ii_paged for k, p in profiles.items()}
    wl = generate_workload(4, 0.75, sorted(profiles), nominal, seed=3)
    cfg = SystemConfig(n_pages=4, profiles=profiles)
    base = simulate_system(wl, cfg, "single")
    mt = simulate_system(wl, cfg, "multithreaded")
    print(
        f"  single-threaded CGRA makespan {base.makespan:.0f}, "
        f"multithreaded {mt.makespan:.0f} "
        f"-> improvement {improvement(base, mt) * 100:+.1f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "mpeg"))
