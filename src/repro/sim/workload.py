"""Workload generation for the multithreading experiments (§VII-B.1).

"We run 1, 2, 4, 8, and 16 threads in parallel for each of the CGRA needs.
Each thread is randomly and independently generated, where portions of the
thread are either assigned to the processor or the CGRA.  For portions
assigned to the CGRA, the schedule that is ran is randomly chosen so as to
not create bias towards any one kernel."

A thread is a sequence of segments alternating between CPU work (cycles on
the host core) and CGRA kernels (a kernel name plus a trip count).  The
*CGRA need* (50% / 75% / 87.5% in the paper) is the fraction of the
thread's nominal single-threaded execution time spent in CGRA kernels,
where a kernel's nominal time is ``trip x II`` on the full array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.errors import WorkloadError
from repro.util.rng import make_rng

__all__ = ["Segment", "ThreadSpec", "generate_workload"]


@dataclass(frozen=True)
class Segment:
    """One phase of a thread: CPU cycles or a CGRA kernel invocation."""

    kind: str  # "cpu" | "cgra"
    cycles: int = 0  # cpu only
    kernel: str = ""  # cgra only
    trip: int = 0  # cgra only

    def __post_init__(self) -> None:
        if self.kind == "cpu":
            if self.cycles <= 0:
                raise WorkloadError(f"cpu segment needs cycles > 0, got {self.cycles}")
        elif self.kind == "cgra":
            if not self.kernel or self.trip <= 0:
                raise WorkloadError("cgra segment needs a kernel and trip > 0")
        else:
            raise WorkloadError(f"unknown segment kind {self.kind!r}")


@dataclass(frozen=True)
class ThreadSpec:
    """A generated thread: its segments in execution order, starting at
    ``arrival`` (cycles; the paper's experiment launches all threads
    together, arrival 0, but the runtime handles staggered invocation —
    "threads can be invoked at runtime", §III)."""

    tid: int
    segments: tuple[Segment, ...]
    arrival: int = 0

    def cgra_fraction(self, nominal_ii: dict[str, int]) -> float:
        """Fraction of nominal time spent on the CGRA."""
        cpu = sum(s.cycles for s in self.segments if s.kind == "cpu")
        acc = sum(
            s.trip * nominal_ii[s.kernel] for s in self.segments if s.kind == "cgra"
        )
        total = cpu + acc
        return acc / total if total else 0.0


def generate_workload(
    n_threads: int,
    cgra_need: float,
    kernels: Sequence[str],
    nominal_ii: dict[str, int],
    *,
    seed: int = 0,
    mean_total_work: int = 50_000,
    phases_per_thread: int = 6,
    jitter: float = 0.25,
    mean_arrival_gap: int = 0,
) -> list[ThreadSpec]:
    """Generate *n_threads* independent random threads.

    Each thread's total nominal work is ``mean_total_work`` +/- *jitter*;
    it is split into ``phases_per_thread`` (CPU, CGRA) phase pairs of
    random relative sizes, with the CGRA share fixed at *cgra_need* and
    kernels drawn uniformly.  ``mean_arrival_gap > 0`` staggers thread
    launches with exponential inter-arrival times (the paper launches all
    threads at once, the default).
    """
    if not 0.0 < cgra_need < 1.0:
        raise WorkloadError(f"cgra_need must be in (0,1), got {cgra_need}")
    if n_threads < 1:
        raise WorkloadError(f"n_threads must be >= 1, got {n_threads}")
    if not kernels:
        raise WorkloadError("kernel list is empty")
    for k in kernels:
        if k not in nominal_ii:
            raise WorkloadError(f"no nominal II for kernel {k!r}")
    rng = make_rng(seed)
    threads: list[ThreadSpec] = []
    arrival = 0
    for tid in range(n_threads):
        if mean_arrival_gap > 0 and tid > 0:
            arrival += int(rng.exponential(mean_arrival_gap))
        total = mean_total_work * (1.0 + jitter * (2 * rng.random() - 1.0))
        cgra_work = total * cgra_need
        cpu_work = total - cgra_work
        # random phase weights, one pair per phase
        w_cpu = rng.random(phases_per_thread) + 0.2
        w_acc = rng.random(phases_per_thread) + 0.2
        w_cpu /= w_cpu.sum()
        w_acc /= w_acc.sum()
        segments: list[Segment] = []
        for p in range(phases_per_thread):
            cpu_cycles = max(1, int(round(cpu_work * w_cpu[p])))
            segments.append(Segment("cpu", cycles=cpu_cycles))
            kernel = kernels[int(rng.integers(len(kernels)))]
            ii = nominal_ii[kernel]
            trip = max(1, int(round(cgra_work * w_acc[p] / ii)))
            segments.append(Segment("cgra", kernel=kernel, trip=trip))
        threads.append(ThreadSpec(tid, tuple(segments), arrival))
    return threads
