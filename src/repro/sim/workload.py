"""Workload generation for the multithreading experiments (§VII-B.1).

"We run 1, 2, 4, 8, and 16 threads in parallel for each of the CGRA needs.
Each thread is randomly and independently generated, where portions of the
thread are either assigned to the processor or the CGRA.  For portions
assigned to the CGRA, the schedule that is ran is randomly chosen so as to
not create bias towards any one kernel."

A thread is a sequence of segments alternating between CPU work (cycles on
the host core) and CGRA kernels (a kernel name plus a trip count).  The
*CGRA need* (50% / 75% / 87.5% in the paper) is the fraction of the
thread's nominal single-threaded execution time spent in CGRA kernels,
where a kernel's nominal time is ``trip x II`` on the full array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.errors import WorkloadError
from repro.util.rng import make_rng

__all__ = [
    "Segment",
    "ThreadSpec",
    "PriorityClass",
    "DEFAULT_CLASSES",
    "ARRIVAL_MODELS",
    "generate_workload",
    "generate_trace",
]


@dataclass(frozen=True)
class Segment:
    """One phase of a thread: CPU cycles or a CGRA kernel invocation."""

    kind: str  # "cpu" | "cgra"
    cycles: int = 0  # cpu only
    kernel: str = ""  # cgra only
    trip: int = 0  # cgra only

    def __post_init__(self) -> None:
        if self.kind == "cpu":
            if self.cycles <= 0:
                raise WorkloadError(f"cpu segment needs cycles > 0, got {self.cycles}")
        elif self.kind == "cgra":
            if not self.kernel or self.trip <= 0:
                raise WorkloadError("cgra segment needs a kernel and trip > 0")
        else:
            raise WorkloadError(f"unknown segment kind {self.kind!r}")


@dataclass(frozen=True)
class ThreadSpec:
    """A generated thread: its segments in execution order, starting at
    ``arrival`` (cycles; the paper's experiment launches all threads
    together, arrival 0, but the runtime handles staggered invocation —
    "threads can be invoked at runtime", §III)."""

    tid: int
    segments: tuple[Segment, ...]
    arrival: int = 0
    # scheduling class of the thread (0 = lowest); only priority-aware
    # allocation policies read it, everything else ignores it
    priority: int = 0

    def cgra_fraction(self, nominal_ii: dict[str, int]) -> float:
        """Fraction of nominal time spent on the CGRA."""
        cpu = sum(s.cycles for s in self.segments if s.kind == "cpu")
        acc = sum(
            s.trip * nominal_ii[s.kernel] for s in self.segments if s.kind == "cgra"
        )
        total = cpu + acc
        return acc / total if total else 0.0


def generate_workload(
    n_threads: int,
    cgra_need: float,
    kernels: Sequence[str],
    nominal_ii: dict[str, int],
    *,
    seed: int = 0,
    mean_total_work: int = 50_000,
    phases_per_thread: int = 6,
    jitter: float = 0.25,
    mean_arrival_gap: int = 0,
) -> list[ThreadSpec]:
    """Generate *n_threads* independent random threads.

    Each thread's total nominal work is ``mean_total_work`` +/- *jitter*;
    it is split into ``phases_per_thread`` (CPU, CGRA) phase pairs of
    random relative sizes, with the CGRA share fixed at *cgra_need* and
    kernels drawn uniformly.  ``mean_arrival_gap > 0`` staggers thread
    launches with exponential inter-arrival times (the paper launches all
    threads at once, the default).
    """
    if not 0.0 < cgra_need < 1.0:
        raise WorkloadError(f"cgra_need must be in (0,1), got {cgra_need}")
    if n_threads < 1:
        raise WorkloadError(f"n_threads must be >= 1, got {n_threads}")
    if not kernels:
        raise WorkloadError("kernel list is empty")
    for k in kernels:
        if k not in nominal_ii:
            raise WorkloadError(f"no nominal II for kernel {k!r}")
    rng = make_rng(seed)
    threads: list[ThreadSpec] = []
    arrival = 0
    for tid in range(n_threads):
        if mean_arrival_gap > 0 and tid > 0:
            arrival += int(rng.exponential(mean_arrival_gap))
        total = mean_total_work * (1.0 + jitter * (2 * rng.random() - 1.0))
        segments = _phase_segments(
            rng, total, cgra_need, kernels, nominal_ii, phases_per_thread
        )
        threads.append(ThreadSpec(tid, segments, arrival))
    return threads


def _phase_segments(
    rng,
    total: float,
    cgra_need: float,
    kernels: Sequence[str],
    nominal_ii: dict[str, int],
    phases: int,
) -> tuple[Segment, ...]:
    """Split *total* nominal work into (CPU, CGRA) phase pairs.

    The draw order is part of the determinism contract: recorded bench
    baselines replay byte-identically as long as this consumes the rng in
    the same sequence.
    """
    cgra_work = total * cgra_need
    cpu_work = total - cgra_work
    # random phase weights, one pair per phase
    w_cpu = rng.random(phases) + 0.2
    w_acc = rng.random(phases) + 0.2
    w_cpu /= w_cpu.sum()
    w_acc /= w_acc.sum()
    segments: list[Segment] = []
    for p in range(phases):
        cpu_cycles = max(1, int(round(cpu_work * w_cpu[p])))
        segments.append(Segment("cpu", cycles=cpu_cycles))
        kernel = kernels[int(rng.integers(len(kernels)))]
        ii = nominal_ii[kernel]
        trip = max(1, int(round(cgra_work * w_acc[p] / ii)))
        segments.append(Segment("cgra", kernel=kernel, trip=trip))
    return tuple(segments)


# -- trace-driven generation ------------------------------------------------------
#
# Datacenter-style load is not "N identical threads at t=0": requests come
# in bursts, follow daily load curves, and carry different service classes.
# `generate_trace` models all three while staying seeded and deterministic
# — the same (seed, parameters) pair always produces the identical trace,
# which is what lets policy tournaments and recorded bench trajectories be
# replayed bit-for-bit.


@dataclass(frozen=True)
class PriorityClass:
    """One service class of a trace.

    ``weight`` is the relative share of threads drawn from this class,
    ``priority`` the scheduling priority (higher wins; only priority-aware
    policies look at it), ``work_scale`` scales the class's mean thread
    length, and ``phases`` its number of (CPU, CGRA) phase pairs.
    """

    name: str
    weight: float
    priority: int
    work_scale: float = 1.0
    phases: int = 4

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"class {self.name}: weight must be > 0")
        if self.work_scale <= 0:
            raise WorkloadError(f"class {self.name}: work_scale must be > 0")
        if self.phases < 1:
            raise WorkloadError(f"class {self.name}: phases must be >= 1")


#: batch jobs dominate thread count; interactive and realtime threads are
#: shorter but jump the page queue under priority-aware policies
DEFAULT_CLASSES: tuple[PriorityClass, ...] = (
    PriorityClass("batch", weight=0.6, priority=0, work_scale=1.0, phases=6),
    PriorityClass("interactive", weight=0.3, priority=1, work_scale=0.4, phases=4),
    PriorityClass("realtime", weight=0.1, priority=2, work_scale=0.15, phases=2),
)

ARRIVAL_MODELS = ("all-at-once", "poisson", "bursty", "diurnal")


def _arrival_times(
    rng,
    n: int,
    model: str,
    mean_gap: float,
    burst_size: int,
    diurnal_period: int,
    diurnal_amplitude: float,
) -> np.ndarray:
    """Nondecreasing integer arrival times for *n* threads (first at 0)."""
    if model == "all-at-once" or mean_gap <= 0:
        return np.zeros(n, dtype=np.int64)
    if model == "poisson":
        gaps = rng.exponential(mean_gap, size=n).astype(np.int64)
        gaps[0] = 0
        return np.cumsum(gaps)
    if model == "bursty":
        # bursts of ~burst_size threads arrive together; gaps between
        # bursts stretched so the long-run arrival rate matches poisson's
        sizes = 1 + rng.poisson(burst_size - 1, size=n)
        n_bursts = int(np.searchsorted(np.cumsum(sizes), n) + 1)
        gaps = rng.exponential(mean_gap * burst_size, size=n_bursts).astype(
            np.int64
        )
        gaps[0] = 0
        starts = np.cumsum(gaps)
        return np.repeat(starts, sizes[:n_bursts])[:n]
    if model == "diurnal":
        # a Poisson process with sinusoidally modulated intensity: the
        # "day" peaks at 1 + amplitude times the base rate and bottoms
        # out at 1 - amplitude (floored, so the trough never stalls)
        draws = rng.exponential(mean_gap, size=n)
        out = np.empty(n, dtype=np.int64)
        out[0] = 0
        t = 0.0
        two_pi = 2.0 * math.pi
        for i in range(1, n):
            lam = 1.0 + diurnal_amplitude * math.sin(two_pi * t / diurnal_period)
            t += draws[i] / max(lam, 0.05)
            out[i] = int(t)
        return out
    raise WorkloadError(
        f"unknown arrival model {model!r}; expected one of {ARRIVAL_MODELS}"
    )


def generate_trace(
    n_threads: int,
    cgra_need: float,
    kernels: Sequence[str],
    nominal_ii: dict[str, int],
    *,
    seed: int = 0,
    arrival_model: str = "poisson",
    mean_arrival_gap: float = 20.0,
    burst_size: int = 8,
    diurnal_period: int = 50_000,
    diurnal_amplitude: float = 0.8,
    classes: Sequence[PriorityClass] = DEFAULT_CLASSES,
    mean_total_work: int = 2_000,
    jitter: float = 0.25,
) -> list[ThreadSpec]:
    """Generate a datacenter-style arrival trace of *n_threads* threads.

    Arrivals follow *arrival_model* (see :data:`ARRIVAL_MODELS`); each
    thread draws a service class from *classes* by weight, which sets its
    priority, mean length (``work_scale * mean_total_work``) and phase
    count.  Fully deterministic for a given seed and parameter set.
    """
    if not 0.0 < cgra_need < 1.0:
        raise WorkloadError(f"cgra_need must be in (0,1), got {cgra_need}")
    if n_threads < 1:
        raise WorkloadError(f"n_threads must be >= 1, got {n_threads}")
    if not kernels:
        raise WorkloadError("kernel list is empty")
    for k in kernels:
        if k not in nominal_ii:
            raise WorkloadError(f"no nominal II for kernel {k!r}")
    if not classes:
        raise WorkloadError("trace needs at least one priority class")
    if burst_size < 1:
        raise WorkloadError(f"burst_size must be >= 1, got {burst_size}")
    if diurnal_period < 1:
        raise WorkloadError(f"diurnal_period must be >= 1, got {diurnal_period}")
    if not 0.0 <= diurnal_amplitude <= 1.0:
        raise WorkloadError(
            f"diurnal_amplitude must be in [0,1], got {diurnal_amplitude}"
        )
    rng = make_rng(seed)
    arrivals = _arrival_times(
        rng,
        n_threads,
        arrival_model,
        mean_arrival_gap,
        burst_size,
        diurnal_period,
        diurnal_amplitude,
    )
    weights = np.array([c.weight for c in classes], dtype=float)
    weights /= weights.sum()
    class_idx = rng.choice(len(classes), size=n_threads, p=weights)
    threads: list[ThreadSpec] = []
    for tid in range(n_threads):
        cls = classes[int(class_idx[tid])]
        total = (
            cls.work_scale
            * mean_total_work
            * (1.0 + jitter * (2 * rng.random() - 1.0))
        )
        segments = _phase_segments(
            rng, total, cgra_need, kernels, nominal_ii, cls.phases
        )
        threads.append(
            ThreadSpec(tid, segments, int(arrivals[tid]), priority=cls.priority)
        )
    return threads
