"""Lowering: compiled mapping -> explicit firing program.

A *firing* is one execution of one op or route step for one kernel
iteration, with every operand resolved to either an immediate or a read of
the value some PE produced at an exact earlier cycle.  Lowering a modulo
schedule is mechanical (iteration *i* of an item at flat time *t* fires at
``t + i*II``); having the explicit form lets one simulator core execute
both compiled and PageMaster-transformed schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.arch.memory import DataMemory
from repro.compiler.mapping import Mapping
from repro.dfg.graph import Edge
from repro.util.errors import SimulationError

__all__ = ["ResolvedRead", "GlobalSlot", "Firing", "lower_mapping", "resolve_addr"]


@dataclass(frozen=True)
class ResolvedRead:
    """Read the value *pe* produced at exactly cycle *cycle* (register-file
    depth = reader cycle - *cycle*)."""

    pe: Coord
    cycle: int


@dataclass(frozen=True)
class GlobalSlot:
    """A value parked in the reserved global storage area, keyed by the DFG
    edge and the consumer iteration it serves."""

    edge_id: int
    iteration: int


@dataclass(frozen=True)
class Firing:
    """One execution of one op/route step for one kernel iteration."""

    cycle: int
    pe: Coord
    label: str
    opcode: Opcode
    operands: tuple = ()
    immediate: int | None = None
    addr: int | None = None
    iteration: int = 0
    global_writes: tuple[GlobalSlot, ...] = ()

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.LOADT, Opcode.STORE)


def resolve_addr(
    memref, iteration: int, memory: DataMemory, array_prefix: str = ""
) -> int:
    """Absolute address of a symbolic memory reference at *iteration*.

    ``array_prefix`` namespaces the lookup (``"t0/" + name``) so several
    co-resident kernels can share one data memory without name clashes.
    """
    spec = memory.array(array_prefix + memref.array)
    idx = memref.offset + memref.stride * iteration
    if memref.ring is not None:
        idx %= memref.ring
    if not 0 <= idx < spec.length:
        raise SimulationError(
            f"array {memref.array!r} index {idx} out of bounds "
            f"[0,{spec.length}) at iteration {iteration}"
        )
    return spec.base + idx


def _shift(operand, start_cycle: int):
    """Shift a resolved read by a program's start offset."""
    if start_cycle and isinstance(operand, ResolvedRead):
        return ResolvedRead(operand.pe, operand.cycle + start_cycle)
    return operand


def _operand_for_edge(
    mapping: Mapping, e: Edge, iteration: int
):
    """Resolve the consumer-side operand of *e* at *iteration*: a folded
    constant, an immediate during the loop-carried prologue, or a read of
    the last holder."""
    src = mapping.dfg.ops[e.src]
    if src.opcode is Opcode.CONST:
        return src.immediate  # constants live in the configuration (§II)
    if iteration < e.distance:
        return e.init[iteration]  # plain int -> immediate operand
    holder_pe, holder_time = mapping.holder_before(e)
    return ResolvedRead(holder_pe, holder_time + iteration * mapping.ii)


def _check_capability(mapping: Mapping, dfg) -> None:
    """A firing on a PE that cannot execute its op class would be silent
    hardware fiction — refuse to lower such a schedule.  Free on
    homogeneous fabrics (no capability map, no loop)."""
    cgra = mapping.cgra
    if cgra.capability is None:
        return
    from repro.arch.capability import op_class

    id_of = cgra.grid_index.id_of
    for op_id, p in mapping.placements.items():
        op = dfg.ops.get(op_id)
        if op is None:
            continue
        cls = op_class(op.opcode)
        if not cgra.capability.supports_id(cls, id_of[p.pe]):
            raise SimulationError(
                f"cannot lower: op{op_id} ({cls.value}) is placed on "
                f"{p.pe}, which lacks the {cls.value!r} capability"
            )


def lower_mapping(
    mapping: Mapping,
    memory: DataMemory,
    trip: int,
    *,
    array_prefix: str = "",
    start_cycle: int = 0,
    first_iteration: int = 0,
) -> list[Firing]:
    """Firing program for *trip* kernel iterations of a compiled mapping.

    ``start_cycle`` shifts the whole program in time (a thread launched
    mid-run); ``array_prefix`` namespaces its arrays in the shared memory;
    ``first_iteration`` offsets memory addressing so a kernel can be
    resumed mid-stream (dynamic reshaping hands execution from one
    schedule to another at an iteration boundary — loop-carried edges then
    carry the boundary state in their ``init`` values).
    """
    if trip < 0:
        raise SimulationError(f"trip count must be >= 0, got {trip}")
    if start_cycle < 0:
        raise SimulationError(f"start_cycle must be >= 0, got {start_cycle}")
    dfg, ii = mapping.dfg, mapping.ii
    _check_capability(mapping, dfg)
    firings: list[Firing] = []

    for i in range(trip):
        # operations (constants are folded into operands, not fired)
        for op_id, op in dfg.ops.items():
            if op.opcode is Opcode.CONST:
                continue
            p = mapping.placement(op_id)
            operands = tuple(
                _shift(_operand_for_edge(mapping, e, i), start_cycle)
                for e in dfg.in_edges(op_id)
            )
            addr = (
                resolve_addr(op.memref, first_iteration + i, memory, array_prefix)
                if op.memref is not None
                else None
            )
            firings.append(
                Firing(
                    cycle=start_cycle + p.time + i * ii,
                    pe=p.pe,
                    label=f"{op.label}#{i}",
                    opcode=op.opcode,
                    operands=operands,
                    immediate=op.immediate,
                    addr=addr,
                    iteration=i,
                )
            )
        # route steps: only live once the carried value is a real produced
        # value (consumer iterations >= distance); prologue iterations read
        # the edge's init as an immediate directly at the consumer.
        for e in dfg.edges.values():
            if i < e.distance:
                continue
            steps = mapping.route(e.id).steps
            if not steps:
                continue
            prev_pe, prev_time = mapping.route_origin(e)
            for hop, s in enumerate(steps):
                firings.append(
                    Firing(
                        cycle=start_cycle + s.time + i * ii,
                        pe=s.pe,
                        label=f"route{e.id}.{hop}#{i}",
                        opcode=Opcode.ROUTE,
                        operands=(
                            ResolvedRead(
                                prev_pe, start_cycle + prev_time + i * ii
                            ),
                        ),
                        iteration=i,
                    )
                )
                prev_pe, prev_time = s.pe, s.time

    firings.sort(key=lambda f: (f.cycle, f.pe))
    return firings
