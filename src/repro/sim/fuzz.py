"""Deterministic workload fuzzer for the simulation oracle.

Sweeps a seeded lattice of :func:`~repro.sim.workload.generate_workload`
configurations — all five non-evicting stock allocation policies plus the
eviction-happy priority one, staggered and simultaneous arrivals, reconfiguration
overhead on/off, iteration-boundary switching on/off — and pushes every
case through :func:`~repro.sim.oracle.verify_system` in **both** modes:
the event-driven simulator must agree bit-for-bit with the cycle-quantum
reference oracle and satisfy every timeline invariant, or
:class:`~repro.util.errors.OracleViolation` names the divergence.

Exposed as ``python -m repro.bench sim-oracle`` and run as a CI smoke
step; everything is seeded through :func:`~repro.util.rng.derive_seed`,
so a reported case number reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policies import (
    BestFitPolicy,
    FairSharePolicy,
    HalvingPolicy,
    NeedAwareHalvingPolicy,
    PriorityEvictionPolicy,
    StaticEqualPolicy,
)
from repro.sim.oracle import OracleResult, verify_system
from repro.sim.system import KernelProfile, SystemConfig, SystemResult
from repro.sim.workload import generate_workload
from repro.util.errors import OracleViolation
from repro.util.rng import derive_seed

__all__ = [
    "FUZZ_PROFILES",
    "PriorityEvictionPolicy",
    "FuzzCase",
    "FuzzReport",
    "fuzz_case",
    "run_fuzz",
]

#: Kernel mix chosen to exercise every rate path: a unit-II kernel, a slow
#: one, a wide one whose need exceeds small grants (forcing PageMaster
#: shrinks), and a wrap-using one whose zigzag fold is the expensive case.
FUZZ_PROFILES: dict[str, KernelProfile] = {
    "fast": KernelProfile("fast", ii_base=1, ii_paged=1, pages_used=1),
    "slow": KernelProfile("slow", ii_base=4, ii_paged=4, pages_used=1),
    "wide": KernelProfile("wide", ii_base=1, ii_paged=2, pages_used=4),
    "half": KernelProfile(
        "half", ii_base=2, ii_paged=3, pages_used=2, wrap_used=True
    ),
}

_NOMINAL_II = {name: p.ii_base for name, p in FUZZ_PROFILES.items()}


def _make_policy(name: str):
    if name == "halving":
        return HalvingPolicy()
    if name == "need-aware":
        return NeedAwareHalvingPolicy()
    if name == "fair-share":
        return FairSharePolicy()
    if name == "static-equal":
        return StaticEqualPolicy(max_threads=4)
    if name == "best-fit":
        return BestFitPolicy()
    if name == "evicting":
        # no priorities map: tid-based default, lower tid outranks higher
        return PriorityEvictionPolicy()
    raise ValueError(f"unknown fuzz policy {name!r}")


_POLICIES = (
    "halving",
    "need-aware",
    "fair-share",
    "static-equal",
    "best-fit",
    "evicting",
)
_OVERHEADS = (0, 3)
_BOUNDARY = (False, True)
_GAPS = (0, 40)
_N_THREADS = (2, 3, 5, 6)
_NEEDS = (0.5, 0.75, 0.875)
_N_PAGES = (3, 4, 5, 8)


@dataclass(frozen=True)
class FuzzCase:
    """One point of the sweep lattice, fully determined by its index."""

    index: int
    policy: str
    n_threads: int
    n_pages: int
    cgra_need: float
    reconfig_overhead: int
    switch_at_iteration_boundary: bool
    mean_arrival_gap: int
    seed: int


def make_case(index: int, seed: int) -> FuzzCase:
    """The *index*-th lattice point: the policy x overhead x boundary x
    arrival-gap grid cycles fastest, thread/page/need shape slower, so any
    prefix of the sweep already spans all four policies and both modes'
    interesting knobs."""
    pol = _POLICIES[index % len(_POLICIES)]
    rest = index // len(_POLICIES)
    overhead = _OVERHEADS[rest % len(_OVERHEADS)]
    rest //= len(_OVERHEADS)
    boundary = _BOUNDARY[rest % len(_BOUNDARY)]
    rest //= len(_BOUNDARY)
    gap = _GAPS[rest % len(_GAPS)]
    return FuzzCase(
        index=index,
        policy=pol,
        n_threads=_N_THREADS[index % len(_N_THREADS)],
        n_pages=_N_PAGES[index % len(_N_PAGES)],
        cgra_need=_NEEDS[index % len(_NEEDS)],
        reconfig_overhead=overhead,
        switch_at_iteration_boundary=boundary,
        mean_arrival_gap=gap,
        seed=derive_seed(seed, "sim-fuzz", index),
    )


@dataclass
class FuzzReport:
    """Outcome of one sweep: counts plus per-case verified results."""

    cases: int = 0
    runs: int = 0  # one per (case, mode)
    by_policy: dict[str, int] = field(default_factory=dict)
    by_mode: dict[str, int] = field(default_factory=dict)
    oracle_steps: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"sim-oracle fuzz: {self.cases} configs, {self.runs} verified "
            f"runs, {self.oracle_steps} oracle quantum-steps",
            "  policies: "
            + ", ".join(
                f"{p}={n}" for p, n in sorted(self.by_policy.items())
            ),
            "  modes:    "
            + ", ".join(f"{m}={n}" for m, n in sorted(self.by_mode.items())),
        ]
        for f in self.failures:
            lines.append(f"  FAIL {f}")
        lines.append("  all green" if self.ok else "  VIOLATIONS FOUND")
        return "\n".join(lines)


def fuzz_case(
    case: FuzzCase, mode: str
) -> tuple[SystemResult, OracleResult]:
    """Build the workload and config of *case* and verify one *mode*."""
    workload = generate_workload(
        case.n_threads,
        case.cgra_need,
        sorted(FUZZ_PROFILES),
        _NOMINAL_II,
        seed=case.seed,
        mean_total_work=300,
        phases_per_thread=3,
        mean_arrival_gap=case.mean_arrival_gap,
    )
    config = SystemConfig(
        n_pages=case.n_pages,
        profiles=FUZZ_PROFILES,
        policy=_make_policy(case.policy),
        reconfig_overhead=case.reconfig_overhead,
        switch_at_iteration_boundary=case.switch_at_iteration_boundary,
    )
    return verify_system(workload, config, mode)


def run_fuzz(n_cases: int = 60, seed: int = 0) -> FuzzReport:
    """Verify *n_cases* lattice points in both modes; never raises — the
    report carries any violations so a sweep shows *all* divergences."""
    report = FuzzReport()
    for i in range(n_cases):
        case = make_case(i, seed)
        report.cases += 1
        report.by_policy[case.policy] = report.by_policy.get(case.policy, 0) + 1
        for mode in ("single", "multithreaded"):
            try:
                _, oracle = fuzz_case(case, mode)
            except OracleViolation as err:
                report.failures.append(
                    f"case {case.index} ({case.policy}, {mode}, "
                    f"seed {case.seed}): {err}"
                )
                continue
            report.runs += 1
            report.by_mode[mode] = report.by_mode.get(mode, 0) + 1
            report.oracle_steps += oracle.steps
    return report
