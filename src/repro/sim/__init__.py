"""Simulators.

* :mod:`repro.sim.reference` — architecture-independent DFG interpreter,
  the functional golden model for every kernel.
* :mod:`repro.sim.lowering` — turns a compiled mapping into an explicit
  firing program (one record per op/route execution).
* :mod:`repro.sim.retarget` — turns a paged mapping plus a PageMaster
  placement into the firing program of the *transformed* (shrunken)
  schedule, applying fold mirroring and resolving each transfer to a
  rotating-register read or a global-storage round trip.
* :mod:`repro.sim.cgra_sim` — cycle-accurate execution of firing programs
  with register-file depth, slot-conflict, bus and memory checking.
* :mod:`repro.sim.workload`, :mod:`repro.sim.system` — the multithreaded
  system model of §VII-B: threads alternating CPU and CGRA phases on a
  multithreaded host with the CGRA as shared accelerator.
* :mod:`repro.sim.oracle`, :mod:`repro.sim.fuzz` — the cycle-quantum
  reference simulator that replays a system run's decision trace and
  re-derives its results independently, the invariant checker over
  results/timelines, and the seeded workload fuzzer asserting event-sim
  == oracle across the configuration lattice.
"""

from repro.sim.reference import run_reference
from repro.sim.lowering import Firing, ResolvedRead, lower_mapping
from repro.sim.cgra_sim import SimResult, simulate
from repro.sim.retarget import retarget_firings, required_batches
from repro.sim.workload import ThreadSpec, Segment, generate_workload
from repro.sim.system import (
    SystemConfig,
    SystemResult,
    improvement,
    simulate_system,
)
from repro.sim.trace import DecisionTrace, SystemTimeline
from repro.sim.oracle import (
    OracleResult,
    check_invariants,
    compare_results,
    run_oracle,
    verify_system,
)
from repro.sim.fuzz import FuzzReport, run_fuzz

__all__ = [
    "run_reference",
    "Firing",
    "ResolvedRead",
    "lower_mapping",
    "SimResult",
    "simulate",
    "retarget_firings",
    "required_batches",
    "ThreadSpec",
    "Segment",
    "generate_workload",
    "SystemConfig",
    "SystemResult",
    "improvement",
    "simulate_system",
    "DecisionTrace",
    "SystemTimeline",
    "OracleResult",
    "check_invariants",
    "compare_results",
    "run_oracle",
    "verify_system",
    "FuzzReport",
    "run_fuzz",
]
