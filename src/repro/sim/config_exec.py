"""Configuration-driven execution: run a kernel straight from its
configuration memory.

This is the hardware's view: each PE replays its
:class:`~repro.arch.config.SlotConfig` table with period II, no knowledge
of the DFG or the mapping.  ``unroll_config`` expands a
:class:`~repro.arch.config.ConfigTable` into the simulator's firing form,
giving a second, independent execution path for compiled kernels — the
tests cross-check it against the mapping-driven lowering and the reference
interpreter, so a bug in either pipeline shows up as a divergence.
"""

from __future__ import annotations

from repro.arch.config import ConfigTable, GlobalRead, Immediate, ReadNeighbor
from repro.sim.lowering import Firing, GlobalSlot, ResolvedRead
from repro.util.errors import SimulationError

__all__ = ["unroll_config"]


def unroll_config(table: ConfigTable, trip: int) -> list[Firing]:
    """Firing program for *trip* kernel iterations of a configuration.

    Each slot fires at ``start + k * II`` for ``k = 0 .. trip - 1 -
    trip_offset`` (slots carrying loop-distance-*d* values skip the first
    *d* kernel iterations; consumers read the edge's preloaded ``init``
    values instead).  Addresses resolve through the slot's
    :class:`~repro.arch.config.AddressPattern`.
    """
    if trip < 0:
        raise SimulationError(f"trip count must be >= 0, got {trip}")
    firings: list[Firing] = []
    ii = table.ii
    for (pe, _mtime), slot in table.slots.items():
        fires = trip - slot.trip_offset
        for k in range(max(0, fires)):
            cycle = slot.start + k * ii
            iteration = k + slot.trip_offset
            operands = []
            for src in slot.operands:
                if isinstance(src, Immediate):
                    operands.append(src.value)
                elif isinstance(src, ReadNeighbor):
                    # iteration semantics: this slot's firing consumes the
                    # value of kernel iteration (iteration - loop_distance)
                    if iteration < src.loop_distance:
                        if not src.init:
                            raise SimulationError(
                                f"{slot.op_id}: prologue read without init"
                            )
                        operands.append(src.init[iteration])
                    else:
                        operands.append(ResolvedRead(src.pe, cycle - src.delta))
                elif isinstance(src, GlobalRead):
                    operands.append(
                        GlobalSlot(src.edge_id, iteration - src.loop_distance)
                    )
                else:
                    raise SimulationError(
                        f"{slot.op_id}: unknown operand source {src!r}"
                    )
            firings.append(
                Firing(
                    cycle=cycle,
                    pe=pe,
                    label=f"{slot.op_id}#{iteration}",
                    opcode=slot.opcode,
                    operands=tuple(operands),
                    immediate=slot.immediate,
                    addr=slot.addr.resolve(iteration) if slot.addr else None,
                    iteration=iteration,
                    global_writes=tuple(
                        GlobalSlot(eid, iteration) for eid in slot.writes_global
                    ),
                )
            )
    firings.sort(key=lambda f: (f.cycle, f.pe))
    return firings
