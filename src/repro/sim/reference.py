"""Reference DFG interpreter — the functional golden model.

Executes a loop-body DFG for a given trip count directly on named numpy
arrays, independent of any mapping or architecture.  Every mapped execution
(original, constrained, or PageMaster-transformed) must produce byte-equal
array contents.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.arch.isa import Opcode, evaluate, wrap32
from repro.dfg.graph import DFG, MemRef
from repro.util.errors import SimulationError

__all__ = ["run_reference"]


def _resolve(ref: MemRef, iteration: int, arrays: dict[str, np.ndarray]) -> tuple:
    try:
        arr = arrays[ref.array]
    except KeyError:
        raise SimulationError(f"kernel references unbound array {ref.array!r}")
    idx = ref.offset + ref.stride * iteration
    if ref.ring is not None:
        idx %= ref.ring
    if not 0 <= idx < arr.shape[0]:
        raise SimulationError(
            f"array {ref.array!r} index {idx} out of bounds "
            f"[0,{arr.shape[0]}) at iteration {iteration}"
        )
    return arr, idx


def run_reference(
    dfg: DFG, arrays: dict[str, np.ndarray], trip: int
) -> dict[str, np.ndarray]:
    """Run *dfg* for *trip* iterations over *arrays* (mutated in place for
    stores; also returned for convenience).

    Loop-carried operands take the edge's ``init`` values for the first
    ``distance`` iterations, then the producer's value from ``distance``
    iterations back.
    """
    if trip < 0:
        raise SimulationError(f"trip count must be >= 0, got {trip}")
    order_graph = nx.DiGraph()
    order_graph.add_nodes_from(dfg.ops)
    for e in dfg.edges.values():
        if e.distance == 0:
            order_graph.add_edge(e.src, e.dst)
    topo = list(nx.topological_sort(order_graph))

    max_dist = max((e.distance for e in dfg.edges.values()), default=0)
    history: dict[int, list[int]] = {v: [] for v in dfg.ops}  # recent values

    for i in range(trip):
        values: dict[int, int] = {}
        for v in topo:
            op = dfg.ops[v]
            operands: list[int] = []
            for e in dfg.in_edges(v):
                if e.distance == 0:
                    operands.append(values[e.src])
                elif i < e.distance:
                    operands.append(wrap32(e.init[i]))
                else:
                    operands.append(history[e.src][-e.distance])
            if op.opcode is Opcode.LOAD:
                arr, idx = _resolve(op.memref, i, arrays)
                values[v] = wrap32(int(arr[idx]))
            elif op.opcode is Opcode.LOADT:
                # ordered load: the token operand only sequences it
                arr, idx = _resolve(op.memref, i, arrays)
                values[v] = wrap32(int(arr[idx]))
            elif op.opcode is Opcode.STORE:
                arr, idx = _resolve(op.memref, i, arrays)
                arr[idx] = operands[0]
                values[v] = operands[0]
            else:
                values[v] = evaluate(op.opcode, operands, op.immediate)
        for v in topo:
            h = history[v]
            h.append(values[v])
            if len(h) > max_dist + 1:
                del h[0]
    return arrays
