"""Discrete-event simulation of a multithreaded CPU with a CGRA accelerator.

Implements the paper's §VII-B evaluation system in two modes:

* ``"single"`` — the status-quo baseline: the CGRA is single-threaded and
  non-preemptive; a kernel occupies the whole array (at its *unconstrained*
  baseline II) and other threads queue FIFO;
* ``"multithreaded"`` — the paper's system: kernels are compiled with the
  paging constraints (paying the constrained ``II_paged``), and at runtime
  the :class:`~repro.core.runtime.CGRAManager` space-multiplexes the array.
  A kernel resident on *M* of the *N* pages progresses at the exact
  steady-state initiation interval of its PageMaster-transformed schedule,
  ``II_eff = steady_state_ii(N, II_paged, M)`` (``II_paged`` when it holds
  the whole array — no transformation needed).

Every thread runs on its own core (the host is a multithreaded processor),
so CPU segments always progress; only the accelerator is contended.  Time
is tracked with exact fractions, so results are deterministic and
platform-independent.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.core.pagemaster import steady_state_ii
from repro.core.policies import Allocation, AllocationPolicy, HalvingPolicy
from repro.core.runtime import CGRAManager, Reallocation
from repro.sim.workload import ThreadSpec
from repro.util.errors import SimulationError, WorkloadError

__all__ = [
    "KernelProfile",
    "SystemConfig",
    "SystemResult",
    "improvement",
    "simulate_system",
]


@dataclass(frozen=True)
class KernelProfile:
    """Compiled facts about one kernel on one CGRA configuration.

    ``pages_used`` is the kernel's page *need*: the paged compiler maps it
    onto the smallest page prefix preserving the II (§VII-B: schedules that
    do not use the entire CGRA leave the rest free).  ``wrap_used`` records
    whether the paged mapping depends on the ring-wrap link; wrap-free
    kernels shrink with the optimal grouped fold when the target page count
    divides the need.

    ``steady_ii`` optionally carries the precomputed steady-state II table
    ``{m: II_eff}`` of the PageMaster-shrunk schedule — compilation
    artifacts (:class:`repro.pipeline.CompiledKernel`) fill it in so the
    simulator never re-derives placements.  Missing entries are computed on
    demand and memoised *per profile instance*, so simulations and tests
    never share mutable state through a module global.
    """

    name: str
    ii_base: int  # unconstrained mapping on the full array
    ii_paged: int  # ring-constrained mapping on its page prefix
    pages_used: int = 1
    wrap_used: bool = False
    steady_ii: Mapping[int, Fraction] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.ii_base < 1 or self.ii_paged < 1:
            raise WorkloadError(f"kernel {self.name}: IIs must be >= 1")
        if self.pages_used < 1:
            raise WorkloadError(f"kernel {self.name}: pages_used must be >= 1")
        memo = dict(self.steady_ii) if self.steady_ii is not None else {}
        object.__setattr__(self, "_steady_memo", memo)
        object.__setattr__(self, "_best_sub_memo", {})

    def steady_state_ii_of(self, m: int) -> Fraction:
        """Exact steady-state II of this kernel shrunk onto *m* pages."""
        memo: dict[int, Fraction] = self._steady_memo
        if m not in memo:
            memo[m] = steady_state_ii(
                self.pages_used, self.ii_paged, m, wrap_used=self.wrap_used
            )
        return memo[m]

    def best_steady_ii_upto(self, m: int) -> Fraction:
        """Best steady-state II over all sub-allocations of an *m*-page
        grant, ``min(steady_state_ii_of(m_eff) for m_eff in 1..m)``.

        The zigzag's efficiency is not monotone in M (e.g. 8 pages onto 5
        columns is slower than the grouped fold onto only 4), so the
        runtime picks the best sub-allocation of the granted segment.
        Memoised per (profile, m) next to ``_steady_memo`` — the scan used
        to be recomputed on every reallocation for the same allocation
        size, which made reallocation-heavy simulations O(m) per event.
        """
        if m < 1:
            raise WorkloadError(f"kernel {self.name}: allocation must be >= 1")
        memo: dict[int, Fraction] = self._best_sub_memo
        best = memo.get(m)
        if best is None:
            best = self.steady_state_ii_of(m)
            if m > 1:
                best = min(self.best_steady_ii_upto(m - 1), best)
            memo[m] = best
        return best


@dataclass
class SystemConfig:
    """Parameters of one system simulation."""

    n_pages: int
    profiles: dict[str, KernelProfile]
    policy: AllocationPolicy | None = None
    reconfig_overhead: int = 0  # cycles a thread stalls per reallocation
    # §VII-B: "the current thread is switched at an integer value of
    # II_p x N/M" — when set, a reshaped thread first completes its
    # in-flight kernel iteration at the old rate before the new allocation
    # takes effect
    switch_at_iteration_boundary: bool = False

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise SimulationError(f"n_pages must be >= 1, got {self.n_pages}")
        if self.policy is None:
            self.policy = HalvingPolicy()


@dataclass
class SystemResult:
    """Outcome of one system simulation."""

    mode: str
    makespan: float
    finish_times: dict[int, float]
    cgra_busy_page_cycles: float
    n_pages: int
    reallocations: int = 0
    kernel_invocations: int = 0
    wait_cycles: float = 0.0  # total time threads spent queued for the CGRA
    arrivals: dict[int, float] = field(default_factory=dict)

    @property
    def cgra_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.cgra_busy_page_cycles / (self.n_pages * self.makespan)

    @property
    def avg_turnaround(self) -> float:
        """Mean turnaround ``finish - arrival``, not mean finish time —
        with staggered arrivals a late thread's absolute finish says
        nothing about how long the system took to serve it."""
        if not self.finish_times:
            return 0.0
        return sum(
            finish - self.arrivals.get(tid, 0.0)
            for tid, finish in self.finish_times.items()
        ) / len(self.finish_times)


def improvement(base: SystemResult, other: SystemResult) -> float:
    """Fractional performance improvement of *other* vs *base* (makespan)."""
    if base.makespan <= 0 and other.makespan <= 0:
        return 0.0  # two empty runs are indistinguishable
    if base.makespan <= 0 or other.makespan <= 0:
        raise SimulationError(
            "improvement undefined for a degenerate zero-makespan run "
            f"(base={base.makespan}, other={other.makespan})"
        )
    return base.makespan / other.makespan - 1.0


@dataclass
class _ThreadState:
    spec: ThreadSpec
    seg_idx: int = 0
    version: int = 0
    # active CGRA kernel bookkeeping
    iterations_left: Fraction = Fraction(0)
    rate: Fraction = Fraction(1)  # cycles per iteration
    last_update: Fraction = Fraction(0)
    stall_until: Fraction = Fraction(0)
    queued_since: Fraction | None = None
    finished: Fraction | None = None


class _SystemSim:
    def __init__(self, workload, config: SystemConfig, mode: str) -> None:
        if mode not in ("single", "multithreaded"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.config = config
        self.threads = {t.tid: _ThreadState(t) for t in workload}
        self.events: list = []
        self.counter = itertools.count()
        self.manager = CGRAManager(config.n_pages, config.policy)
        self.single_running: int | None = None
        # FIFO of threads waiting for the whole-array CGRA; deque so the
        # dequeue is O(1) instead of list.pop(0)'s O(n) shift
        self.single_queue: deque[int] = deque()
        self.timeline = None
        self.decisions = None  # optional repro.sim.trace.DecisionTrace
        self.busy_page_cycles = Fraction(0)
        # accumulated exactly; converted to float once at the end (the
        # module promise is exact-Fraction determinism — a float running
        # sum would make wait_cycles depend on accumulation order)
        self.wait_cycles = Fraction(0)
        self.result = SystemResult(
            mode=mode,
            makespan=0.0,
            finish_times={},
            cgra_busy_page_cycles=0.0,
            n_pages=config.n_pages,
            arrivals={t.tid: float(t.arrival) for t in workload},
        )

    # -- helpers --------------------------------------------------------------------

    def _residents(self) -> dict[int, Allocation]:
        if self.mode == "single":
            if self.single_running is None:
                return {}
            return {self.single_running: Allocation(0, self.config.n_pages)}
        return self.manager.residents

    def _record_decision(
        self, now: Fraction, kind: str, tid: int, reallocations
    ) -> None:
        if self.decisions is not None:
            self.decisions.record(
                now, kind, tid, reallocations, self._residents()
            )

    def _profile(self, kernel: str) -> KernelProfile:
        try:
            return self.config.profiles[kernel]
        except KeyError:
            raise SimulationError(f"no profile for kernel {kernel!r}") from None

    def _ii_eff(self, kernel: str, m: int) -> Fraction:
        """Initiation interval of *kernel* on an *m*-page allocation.

        An allocation at least as large as the kernel's page need runs the
        compiled schedule untransformed ("no transformation needs to be
        performed", §VII-B); smaller allocations run the PageMaster-shrunk
        schedule at its exact steady-state II.
        """
        prof = self._profile(kernel)
        if self.mode == "single":
            return Fraction(prof.ii_base)
        if m >= prof.pages_used:
            return Fraction(prof.ii_paged)
        return prof.best_steady_ii_upto(m)

    def _push(self, time: Fraction, kind: str, tid: int) -> None:
        st = self.threads[tid]
        heapq.heappush(
            self.events, (time, next(self.counter), st.version, kind, tid)
        )

    # -- thread progression ----------------------------------------------------------

    def _start_segment(self, tid: int, now: Fraction) -> None:
        st = self.threads[tid]
        if st.seg_idx >= len(st.spec.segments):
            st.finished = now
            self.result.finish_times[tid] = float(now)
            return
        seg = st.spec.segments[st.seg_idx]
        if seg.kind == "cpu":
            self._push(now + seg.cycles, "cpu_done", tid)
        else:
            self.result.kernel_invocations += 1
            if self.mode == "single":
                self._single_request(tid, now)
            else:
                self._mt_request(tid, now)

    # single-threaded CGRA ------------------------------------------------------------

    def _single_request(self, tid: int, now: Fraction) -> None:
        if self.single_running is None:
            grant = self._single_start(tid, now)
            self._record_decision(now, "request", tid, [grant])
        else:
            st = self.threads[tid]
            st.queued_since = now
            self.single_queue.append(tid)
            if self.timeline is not None:
                seg = st.spec.segments[st.seg_idx]
                self.timeline.record(now, "queued", tid, seg.kernel)
            self._record_decision(now, "request", tid, [])

    def _single_start(self, tid: int, now: Fraction) -> Reallocation:
        st = self.threads[tid]
        if st.queued_since is not None:
            self.wait_cycles += now - st.queued_since
            st.queued_since = None
        seg = st.spec.segments[st.seg_idx]
        self.single_running = tid
        full = Allocation(0, self.config.n_pages)
        if self.timeline is not None:
            self.timeline.record(
                now,
                "kernel_start",
                tid,
                f"{seg.kernel} x{seg.trip} on {full.length} pages",
                alloc=(full.start, full.length),
            )
        dur = Fraction(seg.trip) * self._ii_eff(seg.kernel, self.config.n_pages)
        self.busy_page_cycles += dur * self.config.n_pages
        self._push(now + dur, "kernel_done", tid)
        return Reallocation(tid, None, full)

    # multithreaded CGRA ---------------------------------------------------------------

    def _mt_request(self, tid: int, now: Fraction) -> None:
        st = self.threads[tid]
        seg = st.spec.segments[st.seg_idx]
        st.iterations_left = Fraction(seg.trip)
        st.last_update = now
        st.queued_since = now
        events = self.manager.request(
            tid, need=self._profile(seg.kernel).pages_used
        )
        self._record_decision(now, "request", tid, events)
        self._apply_reallocations(events, now)
        if self.manager.allocation_of(tid) is None:
            if self.timeline is not None:
                self.timeline.record(now, "queued", tid, seg.kernel)
            return  # queued; woken by a future release
        if st.queued_since is not None:  # not already activated by the events
            self._mt_activate(tid, now)

    def _mt_activate(self, tid: int, now: Fraction) -> None:
        st = self.threads[tid]
        if st.queued_since is not None:
            self.wait_cycles += now - st.queued_since
            st.queued_since = None
        alloc = self.manager.allocation_of(tid)
        seg = st.spec.segments[st.seg_idx]
        if self.timeline is not None:
            self.timeline.record(
                now,
                "kernel_start",
                tid,
                f"{seg.kernel} x{seg.trip} on {alloc.length} pages",
                alloc=(alloc.start, alloc.length),
            )
        st.rate = self._ii_eff(seg.kernel, alloc.length)
        st.last_update = now
        self._schedule_completion(tid, now)

    def _schedule_completion(self, tid: int, now: Fraction) -> None:
        st = self.threads[tid]
        st.version += 1
        done = max(now, st.stall_until) + st.iterations_left * st.rate
        self._push(done, "kernel_done", tid)

    def _progress(self, tid: int, now: Fraction) -> None:
        """Advance a running kernel's iteration count to *now*."""
        st = self.threads[tid]
        alloc = self.manager.allocation_of(tid)
        if alloc is None:
            return
        start = max(st.last_update, st.stall_until)
        if now > start and st.rate > 0:
            advanced = (now - start) / st.rate
            st.iterations_left = max(Fraction(0), st.iterations_left - advanced)
            self.busy_page_cycles += (now - start) * alloc.length
        st.last_update = now

    def _apply_reallocations(self, events, now: Fraction) -> None:
        """Reshape running threads after manager events: bill progress at
        the old rate up to *now*, charge the reconfiguration stall, and
        reschedule their completions at the new rate."""
        for ev in events:
            st = self.threads.get(ev.tid)
            if st is None or st.finished is not None:
                continue
            if self.timeline is not None and ev.before and ev.after:
                self.timeline.record(
                    now,
                    "realloc",
                    ev.tid,
                    f"{ev.before.length} -> {ev.after.length} pages",
                    alloc=(ev.after.start, ev.after.length),
                )
            seg = (
                st.spec.segments[st.seg_idx]
                if st.seg_idx < len(st.spec.segments)
                else None
            )
            if seg is None or seg.kind != "cgra":
                continue
            if ev.before is not None:
                # it was running: bill progress at the old allocation first
                old_alloc_len = ev.before.length
                start = max(st.last_update, st.stall_until)
                if now > start and st.rate > 0:
                    advanced = (now - start) / st.rate
                    st.iterations_left = max(
                        Fraction(0), st.iterations_left - advanced
                    )
                    self.busy_page_cycles += (now - start) * old_alloc_len
                st.last_update = now
            if ev.after is None:
                # eviction back to the manager's queue (callers filter the
                # departing thread's own release event, so a None `after`
                # here always means eviction): invalidate the scheduled
                # completion — otherwise the stale kernel_done fires and
                # the thread "completes" while holding zero pages — and
                # mark it queued; the re-admission grant resumes it
                # through _mt_activate with its remaining iterations
                st.version += 1
                st.queued_since = now
                if self.timeline is not None:
                    self.timeline.record(now, "queued", ev.tid, seg.kernel)
                continue
            if (
                ev.before is not None
                and self.config.switch_at_iteration_boundary
                and st.iterations_left > 0
            ):
                # finish the in-flight iteration at the old rate before
                # the transformed schedule takes over; the drain occupies
                # the pages the thread holds *now* (its old segment may
                # already belong to the thread that forced this reshape)
                whole = st.iterations_left.__floor__()
                frac = st.iterations_left - whole
                if frac > 0:
                    st.stall_until = max(st.stall_until, now) + frac * st.rate
                    st.iterations_left = Fraction(whole)
                    self.busy_page_cycles += frac * st.rate * ev.after.length
            st.rate = self._ii_eff(seg.kernel, ev.after.length)
            if ev.before is not None and self.config.reconfig_overhead:
                # the overhead overlaps an iteration-boundary drain: take
                # the later of the two stalls, never overwrite (a plain
                # assignment clobbered the boundary stall and double-ran
                # the already-billed drain window)
                st.stall_until = max(
                    st.stall_until, now + self.config.reconfig_overhead
                )
            if st.queued_since is not None:
                self._mt_activate(ev.tid, now)
            else:
                self._schedule_completion(ev.tid, now)

    # -- event loop -------------------------------------------------------------------

    def run(self) -> SystemResult:
        now = Fraction(0)
        for tid, st in self.threads.items():
            arrival = st.spec.arrival
            if arrival <= 0:
                self._start_segment(tid, now)
            else:
                self._push(Fraction(arrival), "arrive", tid)
        while self.events:
            time, _, version, kind, tid = heapq.heappop(self.events)
            st = self.threads[tid]
            if kind == "kernel_done" and version != st.version:
                continue  # stale completion, superseded by a reallocation
            now = time
            if kind == "arrive":
                self._start_segment(tid, now)
            elif kind == "cpu_done":
                st.seg_idx += 1
                self._start_segment(tid, now)
            elif kind == "kernel_done":
                if self.mode == "single":
                    full = Allocation(0, self.config.n_pages)
                    self.single_running = None
                    if self.timeline is not None:
                        self.timeline.record(now, "kernel_done", tid)
                    reallocs = [Reallocation(tid, full, None)]
                    if self.single_queue:
                        reallocs.append(
                            self._single_start(self.single_queue.popleft(), now)
                        )
                    self._record_decision(now, "release", tid, reallocs)
                    st.seg_idx += 1
                    self._start_segment(tid, now)
                else:
                    self._progress(tid, now)
                    if self.timeline is not None and st.iterations_left <= 0:
                        self.timeline.record(now, "kernel_done", tid)
                    if st.iterations_left > 0:
                        # numeric guard; with exact fractions this only
                        # happens for stale events filtered above
                        self._schedule_completion(tid, now)
                        continue
                    events = self.manager.release(tid)
                    self._record_decision(now, "release", tid, events)
                    self.result.reallocations += sum(
                        1 for e in events if e.tid != tid and e.after is not None
                    )
                    st.seg_idx += 1
                    self._apply_reallocations(
                        [e for e in events if e.tid != tid], now
                    )
                    self._start_segment(tid, now)
            else:
                raise SimulationError(f"unknown event kind {kind!r}")
        unfinished = [t for t, s in self.threads.items() if s.finished is None]
        if unfinished:
            raise SimulationError(f"threads never finished: {unfinished}")
        self.result.makespan = max(self.result.finish_times.values(), default=0.0)
        self.result.cgra_busy_page_cycles = float(self.busy_page_cycles)
        self.result.wait_cycles = float(self.wait_cycles)
        return self.result


def simulate_system(
    workload: list[ThreadSpec],
    config: SystemConfig,
    mode: str,
    *,
    timeline=None,
    decisions=None,
) -> SystemResult:
    """Simulate *workload* on the system in the given mode.

    ``timeline`` (a :class:`repro.sim.trace.SystemTimeline`) records
    thread-level events: kernel starts/completions, reallocations, queue
    entries.  ``decisions`` (a :class:`repro.sim.trace.DecisionTrace`)
    records every allocation decision with exact times — the input the
    cycle-quantum oracle (:func:`repro.sim.oracle.run_oracle`) replays to
    re-derive the result independently.
    """
    sim = _SystemSim(workload, config, mode)
    sim.timeline = timeline
    sim.decisions = decisions
    return sim.run()
