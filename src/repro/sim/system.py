"""Discrete-event simulation of a multithreaded CPU with a CGRA accelerator.

Implements the paper's §VII-B evaluation system in two modes:

* ``"single"`` — the status-quo baseline: the CGRA is single-threaded and
  non-preemptive; a kernel occupies the whole array (at its *unconstrained*
  baseline II) and other threads queue FIFO;
* ``"multithreaded"`` — the paper's system: kernels are compiled with the
  paging constraints (paying the constrained ``II_paged``), and at runtime
  the :class:`~repro.core.runtime.CGRAManager` space-multiplexes the array.
  A kernel resident on *M* of the *N* pages progresses at the exact
  steady-state initiation interval of its PageMaster-transformed schedule,
  ``II_eff = steady_state_ii(N, II_paged, M)`` (``II_paged`` when it holds
  the whole array — no transformation needed).

Every thread runs on its own core (the host is a multithreaded processor),
so CPU segments always progress; only the accelerator is contended.  Time
is tracked exactly, so results are deterministic and platform-independent.

Exactness does not require :class:`~fractions.Fraction` objects
everywhere: CPU cycles, arrivals and overheads are integers, and most
initiation intervals in play are too, so the engine runs on plain machine
ints (the *fast lane*, 1-2 orders of magnitude cheaper per event) and
falls back to ``Fraction`` per value only when a division does not come
out even — a fractional steady-state II of a PageMaster shrink, or a
partial iteration left by a mid-kernel reshape.  The two lanes are
numerically identical (``Fraction(n) == n``), which the cycle-quantum
oracle (:mod:`repro.sim.oracle`) re-proves on every verified run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.core.pagemaster import steady_state_ii
from repro.core.policies import Allocation, AllocationPolicy, HalvingPolicy
from repro.core.runtime import CGRAManager, Reallocation
from repro.sim.workload import ThreadSpec
from repro.util.errors import SimulationError, WorkloadError

__all__ = [
    "KernelProfile",
    "SystemConfig",
    "SystemResult",
    "improvement",
    "simulate_system",
]


# -- exact two-lane arithmetic ----------------------------------------------------
#
# Values are `int` while they can be, `Fraction` once they must be.  All
# helpers are exact; `Fraction` never loses information and an integral
# `Fraction` is collapsed back into the int lane so one fractional rate
# does not poison every later event of the run.


def _norm(x):
    """Collapse an integral Fraction back into the int fast lane."""
    if x.__class__ is Fraction and x.denominator == 1:
        return x.numerator
    return x


def _div(a, b):
    """Exact ``a / b``: int when the division comes out even."""
    if a.__class__ is int and b.__class__ is int:
        q, r = divmod(a, b)
        return q if r == 0 else Fraction(a, b)
    return _norm(a / b)


def _mul(a, b):
    """Exact ``a * b``: stays in the int lane when both operands are."""
    if a.__class__ is int and b.__class__ is int:
        return a * b
    return _norm(a * b)


@dataclass(frozen=True)
class KernelProfile:
    """Compiled facts about one kernel on one CGRA configuration.

    ``pages_used`` is the kernel's page *need*: the paged compiler maps it
    onto the smallest page prefix preserving the II (§VII-B: schedules that
    do not use the entire CGRA leave the rest free).  ``wrap_used`` records
    whether the paged mapping depends on the ring-wrap link; wrap-free
    kernels shrink with the optimal grouped fold when the target page count
    divides the need.

    ``steady_ii`` optionally carries the precomputed steady-state II table
    ``{m: II_eff}`` of the PageMaster-shrunk schedule — compilation
    artifacts (:class:`repro.pipeline.CompiledKernel`) fill it in so the
    simulator never re-derives placements.  Missing entries are computed on
    demand and memoised *per profile instance*, so simulations and tests
    never share mutable state through a module global.
    """

    name: str
    ii_base: int  # unconstrained mapping on the full array
    ii_paged: int  # ring-constrained mapping on its page prefix
    pages_used: int = 1
    wrap_used: bool = False
    steady_ii: Mapping[int, Fraction] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.ii_base < 1 or self.ii_paged < 1:
            raise WorkloadError(f"kernel {self.name}: IIs must be >= 1")
        if self.pages_used < 1:
            raise WorkloadError(f"kernel {self.name}: pages_used must be >= 1")
        memo = dict(self.steady_ii) if self.steady_ii is not None else {}
        object.__setattr__(self, "_steady_memo", memo)
        object.__setattr__(self, "_best_sub_memo", {})

    def steady_state_ii_of(self, m: int) -> Fraction:
        """Exact steady-state II of this kernel shrunk onto *m* pages."""
        memo: dict[int, Fraction] = self._steady_memo
        if m not in memo:
            memo[m] = steady_state_ii(
                self.pages_used, self.ii_paged, m, wrap_used=self.wrap_used
            )
        return memo[m]

    def best_steady_ii_upto(self, m: int) -> Fraction:
        """Best steady-state II over all sub-allocations of an *m*-page
        grant, ``min(steady_state_ii_of(m_eff) for m_eff in 1..m)``.

        The zigzag's efficiency is not monotone in M (e.g. 8 pages onto 5
        columns is slower than the grouped fold onto only 4), so the
        runtime picks the best sub-allocation of the granted segment.
        Memoised per (profile, m) next to ``_steady_memo`` — the scan used
        to be recomputed on every reallocation for the same allocation
        size, which made reallocation-heavy simulations O(m) per event.
        """
        if m < 1:
            raise WorkloadError(f"kernel {self.name}: allocation must be >= 1")
        memo: dict[int, Fraction] = self._best_sub_memo
        best = memo.get(m)
        if best is None:
            best = self.steady_state_ii_of(m)
            if m > 1:
                best = min(self.best_steady_ii_upto(m - 1), best)
            memo[m] = best
        return best


@dataclass
class SystemConfig:
    """Parameters of one system simulation."""

    n_pages: int
    profiles: dict[str, KernelProfile]
    policy: AllocationPolicy | None = None
    reconfig_overhead: int = 0  # cycles a thread stalls per reallocation
    # §VII-B: "the current thread is switched at an integer value of
    # II_p x N/M" — when set, a reshaped thread first completes its
    # in-flight kernel iteration at the old rate before the new allocation
    # takes effect
    switch_at_iteration_boundary: bool = False
    # per-decision allocation-map validation in the CGRAManager; scale
    # benches turn this off and sample whole runs through the oracle
    # instead (decisions and results are identical either way)
    validate_decisions: bool = True

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise SimulationError(f"n_pages must be >= 1, got {self.n_pages}")
        if self.policy is None:
            self.policy = HalvingPolicy()


@dataclass
class SystemResult:
    """Outcome of one system simulation."""

    mode: str
    makespan: float
    finish_times: dict[int, float]
    cgra_busy_page_cycles: float
    n_pages: int
    reallocations: int = 0
    kernel_invocations: int = 0
    wait_cycles: float = 0.0  # total time threads spent queued for the CGRA
    arrivals: dict[int, float] = field(default_factory=dict)
    evictions: int = 0  # residents pushed back to the queue mid-kernel

    @property
    def cgra_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.cgra_busy_page_cycles / (self.n_pages * self.makespan)

    @property
    def avg_turnaround(self) -> float:
        """Mean turnaround ``finish - arrival``, not mean finish time —
        with staggered arrivals a late thread's absolute finish says
        nothing about how long the system took to serve it."""
        if not self.finish_times:
            return 0.0
        return sum(
            finish - self.arrivals.get(tid, 0.0)
            for tid, finish in self.finish_times.items()
        ) / len(self.finish_times)

    # -- SLO-style metrics ---------------------------------------------------------

    def _turnarounds(self) -> np.ndarray:
        return np.sort(
            np.array(
                [
                    finish - self.arrivals.get(tid, 0.0)
                    for tid, finish in self.finish_times.items()
                ]
            )
        )

    def turnaround_percentile(self, p: float) -> float:
        """Nearest-rank percentile of per-thread turnaround (p in [0,100]);
        deterministic — no interpolation, so the value is always one a
        thread actually experienced."""
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile must be in [0,100], got {p}")
        if not self.finish_times:
            return 0.0
        vals = self._turnarounds()
        rank = max(0, math.ceil(p / 100 * len(vals)) - 1)
        return float(vals[rank])

    @property
    def turnaround_p50(self) -> float:
        return self.turnaround_percentile(50)

    @property
    def turnaround_p99(self) -> float:
        return self.turnaround_percentile(99)

    @property
    def eviction_churn(self) -> float:
        """Evictions per kernel invocation — how often the policy yanked
        pages from a running kernel, normalised by offered load."""
        if self.kernel_invocations <= 0:
            return 0.0
        return self.evictions / self.kernel_invocations

    def slo_summary(self) -> dict:
        """The SLO metrics the policy tournament reports, as one record."""
        return {
            "makespan": self.makespan,
            "avg_turnaround": self.avg_turnaround,
            "turnaround_p50": self.turnaround_p50,
            "turnaround_p99": self.turnaround_p99,
            "cgra_utilization": self.cgra_utilization,
            "wait_cycles": self.wait_cycles,
            "reallocations": self.reallocations,
            "evictions": self.evictions,
            "eviction_churn": self.eviction_churn,
        }


def improvement(base: SystemResult, other: SystemResult) -> float:
    """Fractional performance improvement of *other* vs *base* (makespan)."""
    if base.makespan <= 0 and other.makespan <= 0:
        return 0.0  # two empty runs are indistinguishable
    if base.makespan <= 0 or other.makespan <= 0:
        raise SimulationError(
            "improvement undefined for a degenerate zero-makespan run "
            f"(base={base.makespan}, other={other.makespan})"
        )
    return base.makespan / other.makespan - 1.0


@dataclass(slots=True)
class _ThreadState:
    # time/iteration fields are `int | Fraction`: the int fast lane with
    # exact Fraction fallback (see the module docstring)
    spec: ThreadSpec
    seg_idx: int = 0
    version: int = 0
    # active CGRA kernel bookkeeping
    iterations_left: int | Fraction = 0
    rate: int | Fraction = 1  # cycles per iteration
    last_update: int | Fraction = 0
    stall_until: int | Fraction = 0
    queued_since: int | Fraction | None = None
    finished: int | Fraction | None = None


class _SystemSim:
    def __init__(self, workload, config: SystemConfig, mode: str) -> None:
        if mode not in ("single", "multithreaded"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.config = config
        self.threads = {t.tid: _ThreadState(t) for t in workload}
        self.events: list = []
        self.counter = itertools.count()
        self.manager = CGRAManager(
            config.n_pages, config.policy, validate=config.validate_decisions
        )
        self.single_running: int | None = None
        # FIFO of threads waiting for the whole-array CGRA; deque so the
        # dequeue is O(1) instead of list.pop(0)'s O(n) shift
        self.single_queue: deque[int] = deque()
        self.timeline = None
        self.decisions = None  # optional repro.sim.trace.DecisionTrace
        # initiation intervals per (kernel, allocation size), resolved
        # once: the integral-config detection of the fast lane — an
        # integral II enters the run as an int, a fractional steady-state
        # II as the exact Fraction, and no Fraction is ever constructed
        # per event for either
        self._rates: dict[tuple[str, int], int | Fraction] = {}
        # accumulated exactly; converted to float once at the end (a
        # float running sum would make the totals depend on accumulation
        # order)
        self.busy_page_cycles: int | Fraction = 0
        self.wait_cycles: int | Fraction = 0
        self.result = SystemResult(
            mode=mode,
            makespan=0.0,
            finish_times={},
            cgra_busy_page_cycles=0.0,
            n_pages=config.n_pages,
            arrivals={t.tid: float(t.arrival) for t in workload},
        )

    # -- helpers --------------------------------------------------------------------

    def _residents(self) -> dict[int, Allocation]:
        if self.mode == "single":
            if self.single_running is None:
                return {}
            return {self.single_running: Allocation(0, self.config.n_pages)}
        return self.manager.residents

    def _record_decision(
        self, now: Fraction, kind: str, tid: int, reallocations
    ) -> None:
        if self.decisions is not None:
            self.decisions.record(
                now, kind, tid, reallocations, self._residents()
            )

    def _profile(self, kernel: str) -> KernelProfile:
        try:
            return self.config.profiles[kernel]
        except KeyError:
            raise SimulationError(f"no profile for kernel {kernel!r}") from None

    def _ii_eff(self, kernel: str, m: int) -> int | Fraction:
        """Initiation interval of *kernel* on an *m*-page allocation.

        An allocation at least as large as the kernel's page need runs the
        compiled schedule untransformed ("no transformation needs to be
        performed", §VII-B); smaller allocations run the PageMaster-shrunk
        schedule at its exact steady-state II.  Memoised per (kernel, m)
        with integral IIs normalised into the int fast lane.
        """
        key = (kernel, m)
        rate = self._rates.get(key)
        if rate is None:
            prof = self._profile(kernel)
            if self.mode == "single":
                rate = prof.ii_base
            elif m >= prof.pages_used:
                rate = prof.ii_paged
            else:
                rate = _norm(prof.best_steady_ii_upto(m))
            self._rates[key] = rate
        return rate

    def _push(self, time, kind: str, tid: int) -> None:
        st = self.threads[tid]
        heapq.heappush(
            self.events, (time, next(self.counter), st.version, kind, tid)
        )

    # -- thread progression ----------------------------------------------------------

    def _start_segment(self, tid: int, now, st: "_ThreadState | None" = None) -> None:
        if st is None:
            st = self.threads[tid]
        if st.seg_idx >= len(st.spec.segments):
            st.finished = now
            self.result.finish_times[tid] = float(now)
            return
        seg = st.spec.segments[st.seg_idx]
        if seg.kind == "cpu":
            self._push(now + seg.cycles, "cpu_done", tid)
        else:
            self.result.kernel_invocations += 1
            if self.mode == "single":
                self._single_request(tid, now)
            else:
                self._mt_request(tid, now)

    # single-threaded CGRA ------------------------------------------------------------

    def _single_request(self, tid: int, now: Fraction) -> None:
        if self.single_running is None:
            grant = self._single_start(tid, now)
            self._record_decision(now, "request", tid, [grant])
        else:
            st = self.threads[tid]
            st.queued_since = now
            self.single_queue.append(tid)
            if self.timeline is not None:
                seg = st.spec.segments[st.seg_idx]
                self.timeline.record(now, "queued", tid, seg.kernel)
            self._record_decision(now, "request", tid, [])

    def _single_start(self, tid: int, now) -> Reallocation:
        st = self.threads[tid]
        if st.queued_since is not None:
            self.wait_cycles += now - st.queued_since
            st.queued_since = None
        seg = st.spec.segments[st.seg_idx]
        self.single_running = tid
        full = Allocation(0, self.config.n_pages)
        if self.timeline is not None:
            self.timeline.record(
                now,
                "kernel_start",
                tid,
                f"{seg.kernel} x{seg.trip} on {full.length} pages",
                alloc=(full.start, full.length),
            )
        dur = _mul(seg.trip, self._ii_eff(seg.kernel, self.config.n_pages))
        self.busy_page_cycles += _mul(dur, self.config.n_pages)
        self._push(now + dur, "kernel_done", tid)
        return Reallocation(tid, None, full)

    # multithreaded CGRA ---------------------------------------------------------------

    def _mt_request(self, tid: int, now) -> None:
        st = self.threads[tid]
        seg = st.spec.segments[st.seg_idx]
        st.iterations_left = seg.trip
        st.last_update = now
        st.queued_since = now
        events = self.manager.request(
            tid, need=self._profile(seg.kernel).pages_used
        )
        if self.decisions is not None:
            self._record_decision(now, "request", tid, events)
        self._apply_reallocations(events, now)
        if self.manager.threads[tid].allocation is None:
            if self.timeline is not None:
                self.timeline.record(now, "queued", tid, seg.kernel)
            return  # queued; woken by a future release
        if st.queued_since is not None:  # not already activated by the events
            self._mt_activate(tid, now, self.manager.threads[tid].allocation)

    def _mt_activate(self, tid: int, now, alloc: Allocation) -> None:
        # `alloc` is the allocation of the admission *event*, not the
        # manager's current one: within one decision batch a thread can be
        # admitted and immediately reshaped (eviction hand-off followed by
        # the queue drain), and the manager's table already holds the
        # final allocation — billing the admission at it would run the
        # in-flight iteration at a rate the thread never had
        st = self.threads[tid]
        if st.queued_since is not None:
            self.wait_cycles += now - st.queued_since
            st.queued_since = None
        seg = st.spec.segments[st.seg_idx]
        if self.timeline is not None:
            self.timeline.record(
                now,
                "kernel_start",
                tid,
                f"{seg.kernel} x{seg.trip} on {alloc.length} pages",
                alloc=(alloc.start, alloc.length),
            )
        st.rate = self._ii_eff(seg.kernel, alloc.length)
        st.last_update = now
        self._schedule_completion(tid, now)

    def _schedule_completion(self, tid: int, now) -> None:
        # the single hottest scheduling call: every reallocation of a
        # running kernel lands here, so the int lane and the heap push are
        # inlined rather than routed through max()/_mul()/_push()
        st = self.threads[tid]
        st.version += 1
        su = st.stall_until
        base = now if now >= su else su
        il = st.iterations_left
        r = st.rate
        dur = il * r if il.__class__ is int and r.__class__ is int else _mul(il, r)
        heapq.heappush(
            self.events,
            (base + dur, next(self.counter), st.version, "kernel_done", tid),
        )

    def _progress(self, tid: int, now) -> None:
        """Advance a running kernel's iteration count to *now*."""
        st = self.threads[tid]
        h = self.manager.threads.get(tid)
        alloc = h.allocation if h is not None else None
        if alloc is None:
            return
        lu = st.last_update
        su = st.stall_until
        start = lu if lu >= su else su
        if now > start and st.rate > 0:
            advanced = _div(now - start, st.rate)
            left = st.iterations_left - advanced
            st.iterations_left = left if left > 0 else 0
            self.busy_page_cycles += _mul(now - start, alloc.length)
        st.last_update = now

    def _apply_reallocations(self, events, now) -> None:
        """Reshape running threads after manager events: bill progress at
        the old rate up to *now*, charge the reconfiguration stall, and
        reschedule their completions at the new rate."""
        threads = self.threads
        timeline = self.timeline
        boundary = self.config.switch_at_iteration_boundary
        overhead = self.config.reconfig_overhead
        rates = self._rates
        heap = self.events
        counter = self.counter
        heappush = heapq.heappush
        for ev in events:
            # every simulated thread stays in the state table for the whole
            # run, so this lookup cannot miss
            st = threads[ev.tid]
            if st.finished is not None:
                continue
            if timeline is not None and ev.before and ev.after:
                timeline.record(
                    now,
                    "realloc",
                    ev.tid,
                    f"{ev.before.length} -> {ev.after.length} pages",
                    alloc=(ev.after.start, ev.after.length),
                )
            segments = st.spec.segments
            seg = segments[st.seg_idx] if st.seg_idx < len(segments) else None
            if seg is None or seg.kind != "cgra":
                continue
            if ev.before is not None:
                # it was running: bill progress at the old allocation
                # first (int lane inlined — this block runs per
                # reallocation event of every running kernel)
                lu = st.last_update
                su = st.stall_until
                start = lu if lu >= su else su
                if now > start and st.rate > 0:
                    delta = now - start
                    r = st.rate
                    advanced = (
                        _div(delta, r)
                        if delta.__class__ is not int or r.__class__ is not int
                        else delta // r if delta % r == 0 else Fraction(delta, r)
                    )
                    left = st.iterations_left - advanced
                    st.iterations_left = left if left > 0 else 0
                    bl = ev.before.length
                    self.busy_page_cycles += (
                        delta * bl if delta.__class__ is int else _mul(delta, bl)
                    )
                st.last_update = now
            if ev.after is None:
                # eviction back to the manager's queue (callers filter the
                # departing thread's own release event, so a None `after`
                # here always means eviction): invalidate the scheduled
                # completion — otherwise the stale kernel_done fires and
                # the thread "completes" while holding zero pages — and
                # mark it queued; the re-admission grant resumes it
                # through _mt_activate with its remaining iterations
                st.version += 1
                st.queued_since = now
                self.result.evictions += 1
                if timeline is not None:
                    timeline.record(now, "queued", ev.tid, seg.kernel)
                continue
            if ev.before is not None and boundary and st.iterations_left > 0:
                # finish the in-flight iteration at the old rate before
                # the transformed schedule takes over; the drain occupies
                # the pages the thread holds *now* (its old segment may
                # already belong to the thread that forced this reshape)
                whole = math.floor(st.iterations_left)
                frac = st.iterations_left - whole
                if frac > 0:
                    drain = _mul(frac, st.rate)
                    st.stall_until = max(st.stall_until, now) + drain
                    st.iterations_left = whole
                    self.busy_page_cycles += _mul(drain, ev.after.length)
            rate = rates.get((seg.kernel, ev.after.length))
            st.rate = (
                rate
                if rate is not None
                else self._ii_eff(seg.kernel, ev.after.length)
            )
            if ev.before is not None and overhead:
                # the overhead overlaps an iteration-boundary drain: take
                # the later of the two stalls, never overwrite (a plain
                # assignment clobbered the boundary stall and double-ran
                # the already-billed drain window)
                stalled = now + overhead
                if stalled > st.stall_until:
                    st.stall_until = stalled
            if st.queued_since is not None:
                self._mt_activate(ev.tid, now, ev.after)
            else:
                # _schedule_completion, inlined for the hottest caller
                st.version += 1
                su = st.stall_until
                base = now if now >= su else su
                il = st.iterations_left
                r = st.rate
                dur = (
                    il * r
                    if il.__class__ is int and r.__class__ is int
                    else _mul(il, r)
                )
                heappush(
                    heap,
                    (base + dur, next(counter), st.version, "kernel_done", ev.tid),
                )

    # -- event loop -------------------------------------------------------------------

    def run(self) -> SystemResult:
        now = 0
        # batched arrival wheel: all arrivals are sorted up front (numpy,
        # stable so simultaneous arrivals keep workload order — the same
        # order init-time heap pushes gave them) and fed to the loop from
        # a cursor; the heap holds only live completion events, not one
        # entry per not-yet-arrived thread
        tids = list(self.threads)
        order = np.argsort(
            np.array([self.threads[t].spec.arrival for t in tids]),
            kind="stable",
        )
        wheel = [
            (self.threads[tids[i]].spec.arrival, tids[i]) for i in order
        ]
        ai = 0
        while ai < len(wheel) and wheel[ai][0] <= 0:
            self._start_segment(wheel[ai][1], now)
            ai += 1
        heap = self.events
        threads = self.threads
        heappop = heapq.heappop
        n_arrivals = len(wheel)
        single = self.mode == "single"
        while heap or ai < n_arrivals:
            # arrivals precede heap events at the same instant, matching
            # the arrival-events-pushed-first order of the unbatched loop
            if ai < n_arrivals and (not heap or wheel[ai][0] <= heap[0][0]):
                now = wheel[ai][0]
                tid = wheel[ai][1]
                ai += 1
                self._start_segment(tid, now)
                continue
            time, _, version, kind, tid = heappop(heap)
            st = threads[tid]
            if kind == "kernel_done" and version != st.version:
                continue  # stale completion, superseded by a reallocation
            now = time
            if kind == "cpu_done":
                st.seg_idx += 1
                self._start_segment(tid, now, st)
            elif kind == "kernel_done":
                if single:
                    full = Allocation(0, self.config.n_pages)
                    self.single_running = None
                    if self.timeline is not None:
                        self.timeline.record(now, "kernel_done", tid)
                    reallocs = [Reallocation(tid, full, None)]
                    if self.single_queue:
                        reallocs.append(
                            self._single_start(self.single_queue.popleft(), now)
                        )
                    self._record_decision(now, "release", tid, reallocs)
                    st.seg_idx += 1
                    self._start_segment(tid, now)
                else:
                    self._progress(tid, now)
                    if self.timeline is not None and st.iterations_left <= 0:
                        self.timeline.record(now, "kernel_done", tid)
                    if st.iterations_left > 0:
                        # numeric guard; with exact fractions this only
                        # happens for stale events filtered above
                        self._schedule_completion(tid, now)
                        continue
                    events = self.manager.release(tid)
                    if self.decisions is not None:
                        self._record_decision(now, "release", tid, events)
                    others = []
                    reallocs = 0
                    for e in events:
                        if e.tid != tid:
                            others.append(e)
                            if e.after is not None:
                                reallocs += 1
                    self.result.reallocations += reallocs
                    st.seg_idx += 1
                    self._apply_reallocations(others, now)
                    self._start_segment(tid, now, st)
            else:
                raise SimulationError(f"unknown event kind {kind!r}")
        unfinished = [t for t, s in self.threads.items() if s.finished is None]
        if unfinished:
            raise SimulationError(f"threads never finished: {unfinished}")
        self.result.makespan = max(self.result.finish_times.values(), default=0.0)
        self.result.cgra_busy_page_cycles = float(self.busy_page_cycles)
        self.result.wait_cycles = float(self.wait_cycles)
        return self.result


def simulate_system(
    workload: list[ThreadSpec],
    config: SystemConfig,
    mode: str,
    *,
    timeline=None,
    decisions=None,
) -> SystemResult:
    """Simulate *workload* on the system in the given mode.

    ``timeline`` (a :class:`repro.sim.trace.SystemTimeline`) records
    thread-level events: kernel starts/completions, reallocations, queue
    entries.  ``decisions`` (a :class:`repro.sim.trace.DecisionTrace`)
    records every allocation decision with exact times — the input the
    cycle-quantum oracle (:func:`repro.sim.oracle.run_oracle`) replays to
    re-derive the result independently.
    """
    sim = _SystemSim(workload, config, mode)
    sim.timeline = timeline
    sim.decisions = decisions
    return sim.run()
