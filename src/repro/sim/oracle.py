"""Differential simulation oracle for the §VII-B system model.

The event-driven simulator in :mod:`repro.sim.system` is fast because it
jumps straight between completion events, versioning away stale heap
entries.  That is exactly the kind of cleverness that hides timing bugs,
so this module provides the "re-prove it the dumb way" counterpart that
:mod:`repro.analysis` gave compiled artifacts:

* :func:`run_oracle` — a **cycle-quantum reference simulator**: a
  deliberately naive re-implementation of the §VII-B semantics that
  advances time in fixed :class:`~fractions.Fraction` quanta (the GCD of
  every rate and overhead in play, :func:`quantum_for`).  It does not
  re-run the allocation policy; it replays the *same*
  :class:`~repro.sim.trace.DecisionTrace` the event simulator recorded —
  the policy outputs are inputs, the timing arithmetic is re-derived from
  scratch.  Every decision is validated against the oracle's own view:
  a ``release`` must land exactly on the instant the oracle's integration
  says the kernel completed, a ``request`` exactly when the thread's CPU
  segment drained, and the post-decision allocation map must match and
  satisfy :func:`~repro.core.runtime.check_allocation_map`.

  The quantum grid alone is *not* sufficient for exactness: once a
  reallocation leaves a fractional iteration in flight, completion times
  pick up denominators that are products of rate numerators and fall off
  any fixed lattice.  The oracle therefore refines the grid with the
  exact breakpoints it can compute locally (CPU drains, kernel
  completions, arrivals, decision times) and integrates piecewise-linear
  progress in exact fractions between them — naive, slow, and exact.

* :func:`check_invariants` — a conservation checker over any
  :class:`~repro.sim.system.SystemResult` plus
  :class:`~repro.sim.trace.SystemTimeline`: busy-page capacity, wait-cycle
  identity (queued intervals sum to ``wait_cycles``), no progress while
  queued/evicted, allocation-map validity at every event, finish after
  arrival, work conservation against the workload.

* :func:`verify_system` — the one-stop entry used by the tests and the
  ``python -m repro.bench sim-oracle`` fuzz sweep: simulate, replay,
  compare bit-for-bit, check invariants, raise
  :class:`~repro.util.errors.OracleViolation` on any disagreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from functools import reduce

from repro.core.policies import Allocation
from repro.core.runtime import check_allocation_map
from repro.sim.system import SystemConfig, SystemResult, simulate_system
from repro.sim.trace import Decision, DecisionTrace, SystemTimeline
from repro.sim.workload import ThreadSpec
from repro.util.errors import OracleViolation, ReproError, SimulationError

__all__ = [
    "OracleResult",
    "fraction_gcd",
    "quantum_for",
    "run_oracle",
    "check_invariants",
    "compare_results",
    "verify_system",
]


def fraction_gcd(a: Fraction, b: Fraction) -> Fraction:
    """Greatest common divisor of two positive fractions: the largest
    fraction dividing both to an integer quotient."""
    return Fraction(
        math.gcd(a.numerator * b.denominator, b.numerator * a.denominator),
        a.denominator * b.denominator,
    )


def quantum_for(
    workload: list[ThreadSpec], config: SystemConfig, mode: str
) -> Fraction:
    """The oracle's time quantum: GCD of every rate and overhead in play.

    "In play" means the initiation intervals reachable by the kernels the
    workload actually invokes — on every allocation size the pool can
    grant — plus the reconfiguration overhead and the unit cycle (CPU
    segments and arrivals are integral).
    """
    kernels = {
        s.kernel for t in workload for s in t.segments if s.kind == "cgra"
    }
    values = [Fraction(1)]
    if config.reconfig_overhead:
        values.append(Fraction(config.reconfig_overhead))
    for name in sorted(kernels):
        prof = config.profiles[name]
        if mode == "single":
            values.append(Fraction(prof.ii_base))
            continue
        values.append(Fraction(prof.ii_paged))
        for m in range(1, min(prof.pages_used, config.n_pages + 1)):
            values.append(prof.steady_state_ii_of(m))
    return reduce(fraction_gcd, values)


@dataclass
class OracleResult:
    """What the cycle-quantum reference simulator re-derived."""

    mode: str
    makespan: Fraction
    finish_times: dict[int, Fraction]
    busy_page_cycles: Fraction
    wait_cycles: Fraction
    reallocations: int
    kernel_invocations: int
    iterations_done: dict[int, Fraction]
    quantum: Fraction
    steps: int


@dataclass
class _OThread:
    spec: ThreadSpec
    seg_idx: int = 0
    # pending | cpu | ready_cgra | queued | running | done
    status: str = "pending"
    cpu_left: Fraction = Fraction(0)
    iterations_left: Fraction = Fraction(0)
    iterations_done: Fraction = Fraction(0)
    rate: Fraction = Fraction(1)
    alloc: Allocation | None = None
    stall_until: Fraction = Fraction(0)
    queued_since: Fraction | None = None
    completed_at: Fraction | None = None
    finish: Fraction | None = None


class _Oracle:
    def __init__(self, workload, config: SystemConfig, mode: str, trace) -> None:
        if mode not in ("single", "multithreaded"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.config = config
        self.threads = {t.tid: _OThread(t) for t in workload}
        self.trace: list[Decision] = list(trace)
        self.allocs: dict[int, Allocation] = {}
        self.busy = Fraction(0)
        self.wait = Fraction(0)
        self.reallocations = 0
        self.kernel_invocations = 0
        self.now = Fraction(0)

    def _viol(self, msg: str) -> None:
        raise OracleViolation(f"oracle[t={self.now}]: {msg}")

    def _rate_of(self, kernel: str, m: int) -> Fraction:
        prof = self.config.profiles[kernel]
        if self.mode == "single":
            return Fraction(prof.ii_base)
        if m >= prof.pages_used:
            return Fraction(prof.ii_paged)
        return prof.best_steady_ii_upto(m)

    # -- thread lifecycle -------------------------------------------------------

    def _enter_segment(self, st: _OThread) -> None:
        """Move *st* into its current segment (or finish) at ``self.now``."""
        if st.seg_idx >= len(st.spec.segments):
            st.status = "done"
            st.finish = self.now
            return
        seg = st.spec.segments[st.seg_idx]
        if seg.kind == "cpu":
            st.status = "cpu"
            st.cpu_left = Fraction(seg.cycles)
        else:
            # the event simulator must issue the manager request at this
            # exact instant; _check_served flags it if none was recorded
            st.status = "ready_cgra"

    def _mark_completions(self) -> None:
        for st in self.threads.values():
            if (
                st.status == "running"
                and st.iterations_left == 0
                and st.stall_until <= self.now
                and st.completed_at is None
            ):
                st.completed_at = self.now

    # -- decision replay --------------------------------------------------------

    def _apply_reallocation(self, ev, d: Decision) -> None:
        st = self.threads.get(ev.tid)
        if st is None:
            self._viol(f"reallocation names unknown thread {ev.tid}")
        if ev.before != self.allocs.get(ev.tid):
            self._viol(
                f"reallocation of thread {ev.tid} claims before={ev.before} "
                f"but the oracle holds {self.allocs.get(ev.tid)}"
            )
        if ev.after is None:
            self.allocs.pop(ev.tid, None)
            st.alloc = None
            if ev.tid == d.tid and d.kind == "release":
                return  # normal departure; segment advance handled by caller
            # eviction back to the queue
            if st.status != "running":
                self._viol(f"eviction of thread {ev.tid} while {st.status}")
            st.status = "queued"
            st.queued_since = d.time
            st.completed_at = None
            return
        prev = st.alloc
        self.allocs[ev.tid] = ev.after
        st.alloc = ev.after
        if st.status not in ("queued", "running"):
            self._viol(
                f"reallocation grants pages to thread {ev.tid} "
                f"which is {st.status}, not in a CGRA segment"
            )
        seg = st.spec.segments[st.seg_idx]
        if prev is None:
            # admission: wake the queued thread
            self.wait += d.time - st.queued_since
            st.queued_since = None
            st.status = "running"
            st.rate = self._rate_of(seg.kernel, ev.after.length)
            st.completed_at = None
            return
        # reshape of a running thread
        if st.status != "running":
            self._viol(f"reshape of thread {ev.tid} while {st.status}")
        if (
            self.config.switch_at_iteration_boundary
            and st.iterations_left > 0
        ):
            whole = st.iterations_left.__floor__()
            frac = st.iterations_left - whole
            if frac > 0:
                # the in-flight iteration drains at the old rate on the
                # pages the thread holds from now on
                st.stall_until = max(st.stall_until, d.time) + frac * st.rate
                st.iterations_left = Fraction(whole)
                st.iterations_done += frac
                self.busy += frac * st.rate * ev.after.length
        st.rate = self._rate_of(seg.kernel, ev.after.length)
        if self.config.reconfig_overhead:
            st.stall_until = max(
                st.stall_until, d.time + self.config.reconfig_overhead
            )
        st.completed_at = None

    def _apply_decision(self, d: Decision) -> None:
        st = self.threads.get(d.tid)
        if st is None:
            self._viol(f"decision names unknown thread {d.tid}")
        if d.kind == "request":
            if st.status != "ready_cgra":
                self._viol(
                    f"request recorded for thread {d.tid} but the oracle "
                    f"has it {st.status} (CPU segment not drained, or "
                    f"already active)"
                )
            seg = st.spec.segments[st.seg_idx]
            st.iterations_left = Fraction(seg.trip)
            st.completed_at = None
            st.queued_since = d.time
            st.status = "queued"
            self.kernel_invocations += 1
            for ev in d.reallocations:
                self._apply_reallocation(ev, d)
        elif d.kind == "release":
            if st.status != "running":
                self._viol(f"release of thread {d.tid} while {st.status}")
            if st.iterations_left != 0:
                self._viol(
                    f"thread {d.tid} released with {st.iterations_left} "
                    f"iterations outstanding"
                )
            if st.completed_at != d.time:
                self._viol(
                    f"thread {d.tid} completed its kernel at "
                    f"t={st.completed_at} but was released at t={d.time}"
                )
            if self.mode == "multithreaded":
                self.reallocations += sum(
                    1
                    for e in d.reallocations
                    if e.tid != d.tid and e.after is not None
                )
            for ev in d.reallocations:
                self._apply_reallocation(ev, d)
            st.seg_idx += 1
            st.completed_at = None
            self._enter_segment(st)
        else:
            self._viol(f"unknown decision kind {d.kind!r}")
        if self.allocs != d.resident_map():
            self._viol(
                f"allocation map diverged after {d.kind} of thread {d.tid}: "
                f"oracle {sorted(self.allocs.items())} vs "
                f"trace {sorted(d.resident_map().items())}"
            )
        try:
            check_allocation_map(self.config.n_pages, self.allocs)
        except ReproError as err:
            self._viol(f"invalid allocation map: {err}")

    # -- time integration -------------------------------------------------------

    def _integrate(self, t2: Fraction) -> None:
        dt = t2 - self.now
        for st in self.threads.values():
            if st.status == "cpu":
                st.cpu_left -= dt
                if st.cpu_left < 0:
                    self._viol("CPU segment drained past zero")  # unreachable
            elif st.status == "running":
                start = max(self.now, st.stall_until)
                if t2 > start and st.rate > 0:
                    window = t2 - start
                    prog = min(window, st.iterations_left * st.rate)
                    if prog > 0:
                        done = prog / st.rate
                        st.iterations_left -= done
                        st.iterations_done += done
                        self.busy += prog * st.alloc.length
        self.now = t2
        for st in self.threads.values():
            if st.status == "cpu" and st.cpu_left == 0:
                st.seg_idx += 1
                self._enter_segment(st)

    def _check_served(self) -> None:
        for tid, st in self.threads.items():
            if st.status == "ready_cgra":
                self._viol(
                    f"thread {tid} reached a CGRA segment but the event "
                    f"simulator recorded no request for it at this instant"
                )

    def run(self, quantum: Fraction, max_steps: int) -> OracleResult:
        steps = 0
        di = 0
        while True:
            steps += 1
            if steps > max_steps:
                self._viol(f"step budget {max_steps} exceeded")
            # arrivals land exactly on their (integral, breakpointed) time
            for st in self.threads.values():
                if st.status == "pending" and Fraction(st.spec.arrival) <= self.now:
                    self._enter_segment(st)
            # replay all decisions recorded at this instant, in order
            while di < len(self.trace) and self.trace[di].time == self.now:
                self._mark_completions()
                self._apply_decision(self.trace[di])
                di += 1
            if di < len(self.trace) and self.trace[di].time < self.now:
                self._viol(
                    f"decision at t={self.trace[di].time} lies in the past"
                )
            self._mark_completions()
            self._check_served()
            if all(st.status == "done" for st in self.threads.values()):
                break
            # next exact breakpoint, capped by the quantum grid
            candidates: list[Fraction] = []
            if di < len(self.trace):
                candidates.append(self.trace[di].time)
            for st in self.threads.values():
                if st.status == "pending":
                    candidates.append(Fraction(st.spec.arrival))
                elif st.status == "cpu":
                    candidates.append(self.now + st.cpu_left)
                elif st.status == "running" and st.completed_at is None:
                    candidates.append(
                        max(self.now, st.stall_until)
                        + st.iterations_left * st.rate
                    )
            if not candidates:
                stuck = [
                    t for t, s in self.threads.items() if s.status != "done"
                ]
                self._viol(f"no future events but threads {stuck} unfinished")
            t2 = min(min(candidates), self.now + quantum)
            if t2 <= self.now:
                self._viol("time failed to advance")  # unreachable
            self._integrate(t2)
        if di < len(self.trace):
            self._viol(
                f"{len(self.trace) - di} decisions left after all threads "
                f"finished (first at t={self.trace[di].time})"
            )
        # work conservation: billed iterations equal trip counts
        for tid, st in self.threads.items():
            expected = sum(
                Fraction(s.trip)
                for s in st.spec.segments
                if s.kind == "cgra"
            )
            if st.iterations_done != expected:
                self._viol(
                    f"thread {tid} billed {st.iterations_done} iterations "
                    f"but its segments total {expected}"
                )
        finish = {t: s.finish for t, s in self.threads.items()}
        return OracleResult(
            mode=self.mode,
            makespan=max(finish.values(), default=Fraction(0)),
            finish_times=finish,
            busy_page_cycles=self.busy,
            wait_cycles=self.wait,
            reallocations=self.reallocations,
            kernel_invocations=self.kernel_invocations,
            iterations_done={
                t: s.iterations_done for t, s in self.threads.items()
            },
            quantum=quantum,
            steps=steps,
        )


def run_oracle(
    workload: list[ThreadSpec],
    config: SystemConfig,
    mode: str,
    decisions: DecisionTrace | list[Decision],
    *,
    quantum: Fraction | None = None,
    max_steps: int = 2_000_000,
) -> OracleResult:
    """Replay *decisions* through the cycle-quantum reference simulator.

    Raises :class:`OracleViolation` the moment the trace is inconsistent
    with the oracle's independent timing integration.
    """
    trace = (
        decisions.decisions
        if isinstance(decisions, DecisionTrace)
        else decisions
    )
    q = quantum if quantum is not None else quantum_for(workload, config, mode)
    if q <= 0:
        raise SimulationError(f"quantum must be positive, got {q}")
    return _Oracle(workload, config, mode, trace).run(q, max_steps)


# -- invariant checker -------------------------------------------------------------


def check_invariants(
    result: SystemResult,
    timeline: SystemTimeline,
    *,
    workload: list[ThreadSpec] | None = None,
) -> list[str]:
    """Conservation invariants over a simulation outcome.

    Returns human-readable violation strings (empty when all hold):
    finishes after arrivals, makespan consistency, busy-page capacity,
    allocation-map validity at every timeline event, wait-cycle identity,
    no kernel progress while queued/evicted, and — when the *workload* is
    supplied — per-thread completeness and invocation counts.
    """
    v: list[str] = []
    for tid, fin in result.finish_times.items():
        arr = result.arrivals.get(tid, 0.0)
        if fin < arr:
            v.append(f"thread {tid} finished at {fin} before its arrival {arr}")
    if result.finish_times:
        top = max(result.finish_times.values())
        if result.makespan != top:
            v.append(
                f"makespan {result.makespan} != max finish time {top}"
            )
    cap = result.n_pages * result.makespan
    if result.cgra_busy_page_cycles < 0:
        v.append(f"negative busy page-cycles {result.cgra_busy_page_cycles}")
    if result.cgra_busy_page_cycles > cap * (1 + 1e-12) + 1e-9:
        v.append(
            f"busy page-cycles {result.cgra_busy_page_cycles} exceed "
            f"capacity n_pages*makespan = {cap}"
        )
    if result.wait_cycles < 0:
        v.append(f"negative wait cycles {result.wait_cycles}")
    # allocation-map validity between events: changes at one instant form
    # an atomic batch (a fair-share rebalance moves several residents at
    # once), so the map is only checked when time advances past the batch
    live: dict[int, Allocation] = {}
    batch_time: float | None = None

    def _check_live(when: float) -> None:
        try:
            check_allocation_map(result.n_pages, live)
        except ReproError as err:
            v.append(f"t={when}: {err}")
            live.clear()  # keep scanning from a clean slate

    for e in timeline.events:
        if batch_time is not None and e.time > batch_time:
            _check_live(batch_time)
        batch_time = e.time
        if e.kind in ("kernel_start", "realloc"):
            if e.alloc is not None:
                live[e.tid] = Allocation(*e.alloc)
        elif e.kind in ("kernel_done", "queued"):
            live.pop(e.tid, None)
    if batch_time is not None:
        _check_live(batch_time)
    # wait identity + no progress while queued/evicted
    queued_at: dict[int, float] = {}
    gaps = 0.0
    for e in timeline.events:
        if e.kind == "queued":
            if e.tid in queued_at:
                v.append(
                    f"thread {e.tid} queued again at t={e.time} without a "
                    f"kernel start in between"
                )
            queued_at[e.tid] = e.time
        elif e.kind == "kernel_start":
            since = queued_at.pop(e.tid, None)
            if since is not None:
                gaps += e.time - since
        elif e.kind == "kernel_done":
            if e.tid in queued_at:
                v.append(
                    f"thread {e.tid} completed a kernel at t={e.time} "
                    f"while queued/evicted (no pages held)"
                )
        elif e.kind == "realloc":
            if e.tid in queued_at:
                v.append(
                    f"queued thread {e.tid} was reshaped at t={e.time}"
                )
    for tid in queued_at:
        if tid in result.finish_times:
            v.append(f"thread {tid} finished while still queued")
    if not math.isclose(gaps, result.wait_cycles, rel_tol=1e-9, abs_tol=1e-9):
        v.append(
            f"queued intervals sum to {gaps} but wait_cycles is "
            f"{result.wait_cycles}"
        )
    if workload is not None:
        n_cgra = sum(
            1 for t in workload for s in t.segments if s.kind == "cgra"
        )
        if result.kernel_invocations != n_cgra:
            v.append(
                f"{result.kernel_invocations} kernel invocations billed "
                f"but the workload has {n_cgra} CGRA segments"
            )
        for t in workload:
            if t.tid not in result.finish_times:
                v.append(f"thread {t.tid} has no finish time")
    return v


def compare_results(oracle: OracleResult, result: SystemResult) -> list[str]:
    """Bit-level parity between the oracle and the event simulator.

    The event simulator accumulates in exact fractions and converts to
    float once, so equality here is ``==`` on the converted values — any
    drift is a bug, not noise.
    """
    problems: list[str] = []
    if float(oracle.makespan) != result.makespan:
        problems.append(
            f"makespan: oracle {float(oracle.makespan)} vs "
            f"event-sim {result.makespan}"
        )
    if set(oracle.finish_times) != set(result.finish_times):
        problems.append(
            f"finished threads differ: oracle {sorted(oracle.finish_times)} "
            f"vs event-sim {sorted(result.finish_times)}"
        )
    else:
        for tid, fin in oracle.finish_times.items():
            if float(fin) != result.finish_times[tid]:
                problems.append(
                    f"finish of thread {tid}: oracle {float(fin)} vs "
                    f"event-sim {result.finish_times[tid]}"
                )
    if float(oracle.busy_page_cycles) != result.cgra_busy_page_cycles:
        problems.append(
            f"busy page-cycles: oracle {float(oracle.busy_page_cycles)} vs "
            f"event-sim {result.cgra_busy_page_cycles}"
        )
    if float(oracle.wait_cycles) != result.wait_cycles:
        problems.append(
            f"wait cycles: oracle {float(oracle.wait_cycles)} vs "
            f"event-sim {result.wait_cycles}"
        )
    if oracle.reallocations != result.reallocations:
        problems.append(
            f"reallocations: oracle {oracle.reallocations} vs "
            f"event-sim {result.reallocations}"
        )
    if oracle.kernel_invocations != result.kernel_invocations:
        problems.append(
            f"kernel invocations: oracle {oracle.kernel_invocations} vs "
            f"event-sim {result.kernel_invocations}"
        )
    return problems


def verify_system(
    workload: list[ThreadSpec],
    config: SystemConfig,
    mode: str,
    *,
    quantum: Fraction | None = None,
) -> tuple[SystemResult, OracleResult]:
    """Simulate *workload*, replay it through the oracle, and check every
    invariant; raise :class:`OracleViolation` on any disagreement."""
    timeline = SystemTimeline()
    decisions = DecisionTrace()
    result = simulate_system(
        workload, config, mode, timeline=timeline, decisions=decisions
    )
    oracle = run_oracle(workload, config, mode, decisions, quantum=quantum)
    problems = compare_results(oracle, result)
    problems += check_invariants(result, timeline, workload=workload)
    if problems:
        raise OracleViolation(
            f"{mode} simulation failed verification: " + "; ".join(problems)
        )
    return result, oracle
