"""Execution tracing.

Two recorders, both optional and zero-cost when unused:

* :class:`CycleTrace` — plugs into :func:`repro.sim.cgra_sim.simulate` and
  records every firing with its resolved operand values, for debugging
  mappings and transformed schedules (``render()`` prints a per-cycle
  log like a waveform viewer's transcript).
* :class:`SystemTimeline` — plugs into the discrete-event system model and
  records thread-level events (kernel start/finish, reallocations, queue
  waits), for understanding how the page manager multiplexes the array.
* :class:`DecisionTrace` — exact-time record of every allocation decision
  (``CGRAManager`` request/release, or the single-mode FIFO grant) with
  the reallocations applied and the post-decision resident map.  This is
  the trace the cycle-quantum oracle (:mod:`repro.sim.oracle`) replays to
  re-derive finish times, busy-page-cycles and wait cycles independently
  of the event-driven engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.arch.interconnect import Coord
from repro.core.policies import Allocation
from repro.core.runtime import Reallocation

__all__ = [
    "FiringRecord",
    "CycleTrace",
    "TimelineEvent",
    "SystemTimeline",
    "Decision",
    "DecisionTrace",
]


@dataclass(frozen=True)
class FiringRecord:
    """One executed firing with its inputs and result."""

    cycle: int
    pe: Coord
    label: str
    opcode: str
    operands: tuple[int, ...]
    value: int
    iteration: int


@dataclass
class CycleTrace:
    """Bounded recorder of executed firings."""

    limit: int = 100_000
    records: list[FiringRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, firing, operands: list[int], value: int) -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(
            FiringRecord(
                firing.cycle,
                firing.pe,
                firing.label,
                firing.opcode.value,
                tuple(operands),
                value,
                firing.iteration,
            )
        )

    def at_cycle(self, cycle: int) -> list[FiringRecord]:
        return [r for r in self.records if r.cycle == cycle]

    def of_op(self, label_prefix: str) -> list[FiringRecord]:
        return [r for r in self.records if r.label.startswith(label_prefix)]

    def render(self, *, first: int = 0, last: int | None = None) -> str:
        lines = []
        for r in self.records:
            if r.cycle < first or (last is not None and r.cycle > last):
                continue
            ops = ",".join(str(v) for v in r.operands)
            lines.append(
                f"c{r.cycle:05d} {r.pe} {r.label:<16} "
                f"{r.opcode:<6} ({ops}) -> {r.value}"
            )
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (limit {self.limit})")
        return "\n".join(lines)


@dataclass(frozen=True)
class TimelineEvent:
    """One system-level event.

    ``alloc`` optionally carries the page segment involved as a
    ``(start, length)`` pair — kernel starts and reallocations record the
    thread's (new) allocation so the invariant checker can audit page
    accounting without re-running the simulation.
    """

    time: float
    kind: str  # kernel_start | kernel_done | realloc | queued | cpu_start
    tid: int
    detail: str = ""
    alloc: tuple[int, int] | None = None


@dataclass
class SystemTimeline:
    """Recorder for the multithreaded system simulation."""

    events: list[TimelineEvent] = field(default_factory=list)

    def record(
        self,
        time: Fraction | float,
        kind: str,
        tid: int,
        detail: str = "",
        alloc: tuple[int, int] | None = None,
    ) -> None:
        self.events.append(TimelineEvent(float(time), kind, tid, detail, alloc))

    def of_thread(self, tid: int) -> list[TimelineEvent]:
        return [e for e in self.events if e.tid == tid]

    def of_kind(self, kind: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self, *, max_events: int | None = None) -> str:
        events = sorted(self.events, key=lambda e: (e.time, e.tid))
        if max_events is not None:
            events = events[:max_events]
        return "\n".join(
            f"t={e.time:12.1f}  thread {e.tid:<3d} {e.kind:<13s} {e.detail}"
            for e in events
        )


@dataclass(frozen=True)
class Decision:
    """One allocation decision, with exact time and full context.

    ``kind`` is ``"request"`` (a thread asked for the CGRA — in single
    mode the grant of the whole array, in multithreaded mode the manager
    admission) or ``"release"`` (a thread finished its kernel — including
    any expansions/admissions of other threads the departure triggered).
    ``reallocations`` are the :class:`~repro.core.runtime.Reallocation`
    events applied (empty when the requester was queued), and
    ``residents`` is the complete post-decision allocation map.
    """

    time: Fraction
    kind: str  # "request" | "release"
    tid: int
    reallocations: tuple[Reallocation, ...]
    residents: tuple[tuple[int, Allocation], ...]

    def resident_map(self) -> dict[int, Allocation]:
        return dict(self.residents)


@dataclass
class DecisionTrace:
    """Exact-time recorder of every allocation decision of one run."""

    decisions: list[Decision] = field(default_factory=list)

    def record(
        self,
        time: Fraction,
        kind: str,
        tid: int,
        reallocations: list[Reallocation],
        residents: Mapping[int, Allocation],
    ) -> None:
        self.decisions.append(
            Decision(
                Fraction(time),
                kind,
                tid,
                tuple(reallocations),
                tuple(sorted(residents.items())),
            )
        )

    def of_kind(self, kind: str) -> list[Decision]:
        return [d for d in self.decisions if d.kind == kind]

    def of_thread(self, tid: int) -> list[Decision]:
        return [d for d in self.decisions if d.tid == tid]
