"""Retargeting: paged mapping + PageMaster placement -> transformed firings.

This is the runtime half of the paper's contribution, made executable.
Given a ring-constrained mapping of a kernel on all *N* pages and a
:class:`~repro.core.pagemaster.PagePlacement` onto *M* columns, build the
explicit firing program of the shrunken schedule on a concrete chain of
*M* physical page tiles:

* every page instance keeps its internal mapping, re-oriented by the fold
  mirroring of :mod:`repro.core.mirroring`;
* each inter-instance transfer is resolved to the cheapest mechanism that
  physically works: a rotating-register read of the holding PE (same PE or
  a mesh neighbour — the §VI-E architectural support), else a round trip
  through the reserved global storage area of the data memory;
* every firing's cycle comes from the placement, so the simulated cycle
  count is exactly the transformed schedule's makespan.

Functional equivalence with the untransformed mapping (and with the DFG
reference interpreter) is checked by the integration tests for every
kernel and every legal M.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.arch.memory import DataMemory
from repro.compiler.paged import PagedMapping
from repro.core.mirroring import fold_orientations
from repro.core.pagemaster import PagePlacement
from repro.sim.lowering import Firing, GlobalSlot, ResolvedRead, resolve_addr
from repro.util.errors import TransformError

__all__ = ["required_batches", "retarget_firings"]


def required_batches(mapping, trip: int) -> int:
    """How many original cycles (batches) a *trip*-iteration run spans."""
    if trip <= 0:
        return 0
    return mapping.schedule_length + (trip - 1) * mapping.ii


def retarget_firings(
    paged: PagedMapping,
    placement: PagePlacement,
    target_pages: Sequence[int],
    memory: DataMemory,
    trip: int,
    *,
    rf_limit: int | None = None,
    array_prefix: str = "",
    start_cycle: int = 0,
    first_iteration: int = 0,
    firing_tag: str = "",
) -> list[Firing]:
    """Build the firing program of the transformed schedule.

    ``target_pages`` lists the physical tiles (layout ring indices) backing
    columns 0..M-1; they must be chain-contiguous so adjacent columns are
    mesh-adjacent.  ``rf_limit`` caps how many cycles a value may wait in a
    rotating register file before the transfer is routed through global
    storage instead (defaults to the architecture's ``rf_depth``; the cycle
    distance is a safe upper bound on the file occupancy).  For
    co-residency, ``array_prefix`` namespaces the kernel's arrays in a
    shared memory, ``start_cycle`` shifts the program in time, and
    ``firing_tag`` disambiguates global-storage slots between threads.
    """
    mapping, layout = paged.mapping, paged.layout
    full = paged.full_layout or layout
    ii = mapping.ii
    m = placement.m
    if len(target_pages) != m:
        raise TransformError(
            f"placement has {m} columns but {len(target_pages)} target pages"
        )
    if placement.n_pages != layout.num_pages or placement.ii_p != ii:
        raise TransformError(
            f"placement is for N={placement.n_pages}, II={placement.ii_p}; "
            f"mapping has N={layout.num_pages}, II={ii}"
        )
    for x in range(m - 1):
        if not full._pages_adjacent(target_pages[x], target_pages[x + 1]):
            raise TransformError(
                f"target pages {target_pages[x]} and {target_pages[x + 1]} "
                f"are not physically adjacent"
            )
    need = required_batches(mapping, trip)
    if placement.batches < need:
        raise TransformError(
            f"placement covers {placement.batches} batches, run needs {need}"
        )

    if rf_limit is None:
        rf_limit = mapping.cgra.rf_depth
    orients = fold_orientations(layout)

    def locate(pe: Coord, batch: int) -> tuple[Coord, int]:
        """Transformed (physical PE, cycle) of the item originally on *pe*
        firing at original cycle *batch*."""
        n = layout.page_of[pe]
        col, t = placement.slots[(n, batch)]
        phys = full.place_local(target_pages[col], layout.local_of[pe], orients[n])
        return phys, t + start_cycle

    dfg = mapping.dfg
    firings: dict[tuple, Firing] = {}
    # transfers that need the global fallback: holder firing key -> slots
    pending_global: dict[tuple, list[GlobalSlot]] = {}
    # identity of every committed route step, for resolving fanout taps
    step_index: dict[tuple, tuple[int, int]] = {
        (st.pe, st.time): (eid, hop)
        for eid, r in mapping.routes.items()
        for hop, st in enumerate(r.steps)
    }

    def chain_origin(e):
        """(pe, time, firing-key-prefix) of the position an edge's chain
        reads first: a tapped sibling step or the producer."""
        r = mapping.route(e.id)
        if r.tap is not None:
            eid, hop = step_index[(r.tap.pe, r.tap.time)]
            return r.tap.pe, r.tap.time, ("route", eid, hop)
        src = mapping.placement(e.src)
        return src.pe, src.time - e.distance * ii, ("op", e.src)

    def transfer_operand(
        holder_pe: Coord,
        holder_time: int,
        holder_key: tuple,
        reader_phys: Coord,
        reader_cycle: int,
        edge_id: int,
        iteration: int,
    ):
        batch_h = holder_time + iteration * ii
        phys_h, t_h = locate(holder_pe, batch_h)
        if (
            mapping.cgra.adjacent_or_same(reader_phys, phys_h)
            and reader_cycle - t_h <= rf_limit
        ):
            return ResolvedRead(phys_h, t_h)
        slot = GlobalSlot((firing_tag, edge_id) if firing_tag else edge_id, iteration)
        pending_global.setdefault(holder_key, []).append(slot)
        return slot

    for i in range(trip):
        for op_id, op in dfg.ops.items():
            if op.opcode is Opcode.CONST:
                continue
            p = mapping.placement(op_id)
            batch = p.time + i * ii
            phys, cycle = locate(p.pe, batch)
            operands = []
            for e in dfg.in_edges(op_id):
                src_op = dfg.ops[e.src]
                if src_op.opcode is Opcode.CONST:
                    operands.append(src_op.immediate)
                    continue
                if i < e.distance:
                    operands.append(e.init[i])
                    continue
                holder_pe, holder_time = mapping.holder_before(e)
                steps = mapping.route(e.id).steps
                if steps:
                    holder_key = ("route", e.id, len(steps) - 1, i)
                else:
                    ope, oti, prefix = chain_origin(e)
                    holder_key = (
                        (*prefix, i)
                        if prefix[0] == "route"
                        else ("op", e.src, i - e.distance)
                    )
                operands.append(
                    transfer_operand(holder_pe, holder_time, holder_key, phys, cycle, e.id, i)
                )
            addr = (
                resolve_addr(op.memref, first_iteration + i, memory, array_prefix)
                if op.memref
                else None
            )
            firings[("op", op_id, i)] = Firing(
                cycle=cycle,
                pe=phys,
                label=f"{op.label}#{i}",
                opcode=op.opcode,
                operands=tuple(operands),
                immediate=op.immediate,
                addr=addr,
                iteration=i,
            )
        for e in dfg.edges.values():
            if i < e.distance:
                continue
            steps = mapping.route(e.id).steps
            if not steps:
                continue
            prev_pe, prev_time, prefix = chain_origin(e)
            prev_key = (
                (*prefix, i)
                if prefix[0] == "route"
                else ("op", e.src, i - e.distance)
            )
            for hop, s in enumerate(steps):
                batch = s.time + i * ii
                phys, cycle = locate(s.pe, batch)
                operand = transfer_operand(
                    prev_pe, prev_time, prev_key, phys, cycle, e.id, i
                )
                firings[("route", e.id, hop, i)] = Firing(
                    cycle=cycle,
                    pe=phys,
                    label=f"route{e.id}.{hop}#{i}",
                    opcode=Opcode.ROUTE,
                    operands=(operand,),
                    iteration=i,
                )
                prev_pe, prev_time = s.pe, s.time
                prev_key = ("route", e.id, hop, i)

    for key, slots in pending_global.items():
        f = firings.get(key)
        if f is None:
            raise TransformError(f"global transfer from missing firing {key}")
        firings[key] = replace(f, global_writes=f.global_writes + tuple(slots))

    out = list(firings.values())
    out.sort(key=lambda f: (f.cycle, f.pe))
    return out
