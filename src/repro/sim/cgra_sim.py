"""Cycle-accurate functional execution of firing programs.

Executes a list of :class:`~repro.sim.lowering.Firing` records against a
CGRA description and a data memory, enforcing the architectural contracts:

* at most one firing per (PE, cycle);
* memory firings respect the banked bus capacity per segment per cycle;
* every operand read must hit a value still present in the producing PE's
  rotating register file (depth = ``cgra.rf_depth``) — this is how the
  §VI-E requirement ("N rotating registers in each PE") is checked, and
  the maximum depth actually used is reported;
* global-storage round trips (PageMaster fallback transfers) are tracked
  and counted as traffic to the reserved area of the data memory;
* a load and a store to the same address in the same cycle is rejected as
  a hazard (the order would be undefined in hardware).

The result bundles cycle counts and instrumentation for the experiment
harness (IPC, PE utilization — the paper's §IV throughput quantities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.arch.cgra import CGRA
from repro.arch.interconnect import Coord
from repro.arch.isa import Opcode
from repro.arch.memory import DataMemory
from repro.arch.pe import ProcessingElement
from repro.sim.lowering import Firing, GlobalSlot, ResolvedRead
from repro.util.errors import SimulationError

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    """Outcome and instrumentation of one simulated execution."""

    cycles: int
    firings: int
    loads: int
    stores: int
    rf_reads: int = 0
    rf_max_depth_used: int = 0
    global_reads: int = 0
    global_writes: int = 0
    pe_busy: dict[Coord, int] = field(default_factory=dict)

    def utilization(self, cgra: CGRA) -> float:
        """Average PE utilization U over the run (§IV)."""
        if self.cycles == 0:
            return 0.0
        return self.firings / float(cgra.num_pes * self.cycles)

    def summary(self) -> str:
        return (
            f"{self.cycles} cycles, {self.firings} firings "
            f"({self.loads} loads, {self.stores} stores), "
            f"rf depth used {self.rf_max_depth_used}, "
            f"global traffic {self.global_writes}w/{self.global_reads}r"
        )


def simulate(
    firings: Sequence[Firing],
    cgra: CGRA,
    memory: DataMemory,
    *,
    rf_depth: int | None = None,
    bus_key: Callable[[Coord], Hashable] | None = None,
    check_conflicts: bool = True,
    trace=None,
) -> SimResult:
    """Execute *firings* (any order; sorted internally) and return stats.

    ``rf_depth`` overrides the architecture's rotating-register depth;
    ``bus_key`` selects the bus segmentation (defaults to per grid row);
    ``trace`` (a :class:`repro.sim.trace.CycleTrace`) records every firing
    with resolved operand values.
    """
    if bus_key is None:
        bus_key = lambda pe: pe.row  # noqa: E731 - tiny local default
    depth = rf_depth if rf_depth is not None else cgra.rf_depth
    pes: dict[Coord, ProcessingElement] = {}
    global_store: dict[GlobalSlot, int] = {}
    result = SimResult(cycles=0, firings=0, loads=0, stores=0)

    ordered = sorted(firings, key=lambda f: (f.cycle, f.pe))
    idx = 0
    n = len(ordered)
    while idx < n:
        cycle = ordered[idx].cycle
        if cycle < 0:
            raise SimulationError(f"firing {ordered[idx].label} at negative cycle")
        batch: list[Firing] = []
        while idx < n and ordered[idx].cycle == cycle:
            batch.append(ordered[idx])
            idx += 1

        if check_conflicts:
            _check_conflicts(batch, cgra, bus_key, cycle)

        # 1) reads: all operand reads observe pre-cycle state
        resolved: list[tuple[Firing, list[int]]] = []
        stores_this_cycle: dict[int, str] = {}
        for f in batch:
            ops: list[int] = []
            for src in f.operands:
                if isinstance(src, ResolvedRead):
                    if src.cycle >= cycle:
                        raise SimulationError(
                            f"{f.label} reads a value produced at cycle "
                            f"{src.cycle} >= its own cycle {cycle}"
                        )
                    producer = pes.get(src.pe)
                    if producer is None:
                        raise SimulationError(
                            f"{f.label} reads PE {src.pe} which never produced"
                        )
                    ops.append(producer.read_output(src.cycle))
                    result.rf_reads += 1
                    result.rf_max_depth_used = max(
                        result.rf_max_depth_used, producer.depth_of(src.cycle)
                    )
                elif isinstance(src, GlobalSlot):
                    if src not in global_store:
                        raise SimulationError(
                            f"{f.label} reads global slot {src} before any write"
                        )
                    ops.append(global_store[src])
                    result.global_reads += 1
                elif isinstance(src, int):
                    ops.append(src)
                else:
                    raise SimulationError(
                        f"{f.label}: unknown operand source {src!r}"
                    )
            resolved.append((f, ops))

        # 2) execute, push results, queue memory effects.  Store addresses
        # are collected up front so a load in the same cycle is flagged
        # regardless of intra-cycle processing order.
        for f in batch:
            if f.opcode is Opcode.STORE:
                if f.addr in stores_this_cycle:
                    raise SimulationError(
                        f"{f.label}: double store to address {f.addr} "
                        f"({stores_this_cycle[f.addr]})"
                    )
                stores_this_cycle[f.addr] = f.label
        pending_stores: list[tuple[int, int, str]] = []
        for f, ops in resolved:
            pe = pes.get(f.pe)
            if pe is None:
                pe = pes[f.pe] = ProcessingElement(f.pe, depth)
            if f.opcode in (Opcode.LOAD, Opcode.LOADT):
                if f.addr is None:
                    raise SimulationError(f"{f.label}: load without address")
                if f.addr in stores_this_cycle:
                    raise SimulationError(
                        f"{f.label}: load/store hazard at address {f.addr} "
                        f"with {stores_this_cycle[f.addr]}"
                    )
                value = memory.load(f.addr)
                result.loads += 1
                pe.commit(cycle, value)
            elif f.opcode is Opcode.STORE:
                if f.addr is None:
                    raise SimulationError(f"{f.label}: store without address")
                pending_stores.append((f.addr, ops[0], f.label))
                value = ops[0]
                pe.commit(cycle, value)
            else:
                value = pe.execute(f.opcode, ops, f.immediate, cycle)
            if trace is not None:
                trace.record(f, ops, value)
            for slot in f.global_writes:
                global_store[slot] = value
                result.global_writes += 1
            result.firings += 1
            result.pe_busy[f.pe] = result.pe_busy.get(f.pe, 0) + 1

        # load/store hazard check is order-independent because loads above
        # saw only *earlier-cycle* memory state except when flagged; commit
        # stores at end of cycle.
        for addr, value, _label in pending_stores:
            memory.store(addr, value)
            result.stores += 1

        result.cycles = cycle + 1
    return result


def _check_conflicts(batch, cgra, bus_key, cycle) -> None:
    seen: dict[Coord, str] = {}
    bus: dict[Hashable, int] = {}
    for f in batch:
        if not cgra.interconnect.contains(f.pe):
            raise SimulationError(f"{f.label} fires on PE {f.pe} outside grid")
        if f.pe in seen:
            raise SimulationError(
                f"PE {f.pe} double-booked at cycle {cycle}: "
                f"{seen[f.pe]} and {f.label}"
            )
        seen[f.pe] = f.label
        if f.is_memory:
            key = bus_key(f.pe)
            bus[key] = bus.get(key, 0) + 1
            if bus[key] > cgra.mem_ports_per_row:
                raise SimulationError(
                    f"bus segment {key} over capacity at cycle {cycle}"
                )
